#include "model/model.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace mdsm::model {

namespace {
const Value kNoneValue{};
const std::vector<std::string> kNoTargets{};

bool type_matches(const MetaAttribute& attr, const Value& value) {
  switch (attr.type) {
    case AttrType::kBool: return value.is_bool();
    case AttrType::kInt: return value.is_int();
    case AttrType::kReal: return value.is_number();
    case AttrType::kString: return value.is_string();
    case AttrType::kEnum: return value.is_string();
  }
  return false;
}
}  // namespace

const Value& ModelObject::get(std::string_view attribute) const noexcept {
  auto it = attributes_.find(attribute);
  return it == attributes_.end() ? kNoneValue : it->second;
}

bool ModelObject::has(std::string_view attribute) const noexcept {
  return attributes_.contains(attribute);
}

std::string ModelObject::get_string(std::string_view attribute,
                                    std::string fallback) const {
  const Value& v = get(attribute);
  return v.is_string() ? v.as_string() : std::move(fallback);
}

std::int64_t ModelObject::get_int(std::string_view attribute,
                                  std::int64_t fallback) const {
  const Value& v = get(attribute);
  return v.is_int() ? v.as_int() : fallback;
}

double ModelObject::get_real(std::string_view attribute,
                             double fallback) const {
  const Value& v = get(attribute);
  return v.is_number() ? v.as_number() : fallback;
}

bool ModelObject::get_bool(std::string_view attribute, bool fallback) const {
  const Value& v = get(attribute);
  return v.is_bool() ? v.as_bool() : fallback;
}

const std::vector<std::string>& ModelObject::targets(
    std::string_view reference) const noexcept {
  auto it = references_.find(reference);
  return it == references_.end() ? kNoTargets : it->second;
}

Model::Model(std::string name, MetamodelPtr metamodel)
    : name_(std::move(name)), metamodel_(std::move(metamodel)) {}

Result<ModelObject*> Model::create(const std::string& class_name,
                                   const std::string& id) {
  const MetaClass* meta = metamodel_->find_class(class_name);
  if (meta == nullptr) {
    return NotFound("class '" + class_name + "' not in metamodel '" +
                    metamodel_->name() + "'");
  }
  if (meta->is_abstract()) {
    return InvalidArgument("class '" + class_name + "' is abstract");
  }
  if (!is_identifier(id)) {
    return InvalidArgument("'" + id + "' is not a valid object id");
  }
  if (objects_.contains(id)) {
    return AlreadyExists("object '" + id + "' already in model");
  }
  auto object = std::make_unique<ModelObject>(id, *meta);
  // Apply attribute defaults declared in the metamodel.
  for (const auto& attr : meta->attributes()) {
    if (!attr.default_value.is_none()) {
      object->attributes_[attr.name] = attr.default_value;
    }
  }
  ModelObject* raw = object.get();
  objects_[id] = std::move(object);
  order_.push_back(id);
  return raw;
}

Result<ModelObject*> Model::create_child(const std::string& parent_id,
                                         const std::string& reference,
                                         const std::string& class_name,
                                         const std::string& id) {
  ModelObject* parent = find(parent_id);
  if (parent == nullptr) {
    return NotFound("parent '" + parent_id + "' not in model");
  }
  const MetaReference* ref = parent->meta().find_reference(reference);
  if (ref == nullptr) {
    return NotFound("class '" + parent->class_name() +
                    "' has no reference '" + reference + "'");
  }
  if (!ref->containment) {
    return InvalidArgument("reference '" + reference +
                           "' is not a containment reference");
  }
  if (!metamodel_->is_kind_of(class_name, ref->target_class)) {
    return InvalidArgument("class '" + class_name + "' is not a kind of '" +
                           ref->target_class + "'");
  }
  if (!ref->many && !parent->targets(reference).empty()) {
    return FailedPrecondition("single-valued containment '" + reference +
                              "' of '" + parent_id + "' already filled");
  }
  Result<ModelObject*> created = create(class_name, id);
  if (!created.ok()) return created.status();
  ModelObject* child = created.value();
  child->parent_id_ = parent_id;
  child->containing_reference_ = reference;
  parent->references_[reference].push_back(id);
  return child;
}

Status Model::set_attribute(const std::string& id,
                            const std::string& attribute, Value value) {
  ModelObject* object = find(id);
  if (object == nullptr) return NotFound("object '" + id + "' not in model");
  const MetaAttribute* attr = object->meta().find_attribute(attribute);
  if (attr == nullptr) {
    return NotFound("class '" + object->class_name() +
                    "' has no attribute '" + attribute + "'");
  }
  auto check_item = [&](const Value& item) -> Status {
    if (!type_matches(*attr, item)) {
      return InvalidArgument("attribute '" + object->class_name() + "." +
                             attribute + "' expects " +
                             std::string(to_string(attr->type)) + ", got " +
                             std::string(to_string(item.kind())));
    }
    return Status::Ok();
  };
  if (attr->many) {
    if (!value.is_list()) {
      return InvalidArgument("attribute '" + attribute +
                             "' is many-valued; expected a list");
    }
    for (const Value& item : value.as_list()) {
      MDSM_RETURN_IF_ERROR(check_item(item));
    }
  } else {
    MDSM_RETURN_IF_ERROR(check_item(value));
  }
  // Coerce int literals into real-typed single slots for convenience.
  if (!attr->many && attr->type == AttrType::kReal && value.is_int()) {
    value = Value(static_cast<double>(value.as_int()));
  }
  object->attributes_[attribute] = std::move(value);
  return Status::Ok();
}

Status Model::unset_attribute(const std::string& id,
                              const std::string& attribute) {
  ModelObject* object = find(id);
  if (object == nullptr) return NotFound("object '" + id + "' not in model");
  object->attributes_.erase(attribute);
  return Status::Ok();
}

Status Model::check_reference(const ModelObject& object,
                              const MetaReference& reference,
                              const std::string& target_id) const {
  const ModelObject* target = find(target_id);
  if (target == nullptr) {
    return NotFound("reference target '" + target_id + "' not in model");
  }
  if (!metamodel_->is_kind_of(target->class_name(), reference.target_class)) {
    return InvalidArgument("target '" + target_id + "' of '" +
                           object.class_name() + "." + reference.name +
                           "' is not a kind of '" + reference.target_class +
                           "'");
  }
  return Status::Ok();
}

Status Model::add_reference(const std::string& id, const std::string& reference,
                            const std::string& target_id) {
  ModelObject* object = find(id);
  if (object == nullptr) return NotFound("object '" + id + "' not in model");
  const MetaReference* ref = object->meta().find_reference(reference);
  if (ref == nullptr) {
    return NotFound("class '" + object->class_name() +
                    "' has no reference '" + reference + "'");
  }
  if (ref->containment) {
    return InvalidArgument("containment reference '" + reference +
                           "' is populated via create_child");
  }
  MDSM_RETURN_IF_ERROR(check_reference(*object, *ref, target_id));
  auto& targets = object->references_[reference];
  if (std::find(targets.begin(), targets.end(), target_id) != targets.end()) {
    return AlreadyExists("'" + target_id + "' already referenced by '" + id +
                         "." + reference + "'");
  }
  if (!ref->many && !targets.empty()) {
    targets.clear();  // single-valued: replace
  }
  targets.push_back(target_id);
  return Status::Ok();
}

Status Model::remove_reference(const std::string& id,
                               const std::string& reference,
                               const std::string& target_id) {
  ModelObject* object = find(id);
  if (object == nullptr) return NotFound("object '" + id + "' not in model");
  auto it = object->references_.find(reference);
  if (it == object->references_.end()) {
    return NotFound("reference '" + reference + "' unset on '" + id + "'");
  }
  auto& targets = it->second;
  auto pos = std::find(targets.begin(), targets.end(), target_id);
  if (pos == targets.end()) {
    return NotFound("'" + target_id + "' not referenced by '" + id + "." +
                    reference + "'");
  }
  targets.erase(pos);
  if (targets.empty()) object->references_.erase(it);
  return Status::Ok();
}

Status Model::remove(const std::string& id) {
  ModelObject* object = find(id);
  if (object == nullptr) return NotFound("object '" + id + "' not in model");
  // Collect the containment subtree (children before the parent removal).
  std::vector<std::string> doomed;
  std::vector<std::string> frontier{id};
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    doomed.push_back(current);
    const ModelObject* node = find(current);
    for (const auto& ref : node->meta().references()) {
      if (!ref.containment) continue;
      for (const std::string& child : node->targets(ref.name)) {
        frontier.push_back(child);
      }
    }
  }
  // Detach from the parent's containment slot.
  if (!object->parent_id_.empty()) {
    ModelObject* parent = find(object->parent_id_);
    if (parent != nullptr) {
      auto it = parent->references_.find(object->containing_reference_);
      if (it != parent->references_.end()) {
        auto& targets = it->second;
        targets.erase(std::remove(targets.begin(), targets.end(), id),
                      targets.end());
        if (targets.empty()) parent->references_.erase(it);
      }
    }
  }
  // Erase the subtree and scrub dangling cross-references to it.
  for (const std::string& gone : doomed) {
    objects_.erase(gone);
    order_.erase(std::remove(order_.begin(), order_.end(), gone),
                 order_.end());
  }
  for (auto& [oid, obj] : objects_) {
    for (auto it = obj->references_.begin(); it != obj->references_.end();) {
      auto& targets = it->second;
      targets.erase(std::remove_if(targets.begin(), targets.end(),
                                   [&](const std::string& t) {
                                     return std::find(doomed.begin(),
                                                      doomed.end(),
                                                      t) != doomed.end();
                                   }),
                    targets.end());
      it = targets.empty() ? obj->references_.erase(it) : std::next(it);
    }
  }
  return Status::Ok();
}

const ModelObject* Model::find(std::string_view id) const noexcept {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

ModelObject* Model::find(std::string_view id) noexcept {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

std::vector<const ModelObject*> Model::objects() const {
  std::vector<const ModelObject*> out;
  out.reserve(order_.size());
  for (const auto& id : order_) out.push_back(find(id));
  return out;
}

std::vector<const ModelObject*> Model::objects_of(
    std::string_view class_name) const {
  std::vector<const ModelObject*> out;
  for (const auto& id : order_) {
    const ModelObject* object = find(id);
    if (metamodel_->is_kind_of(object->class_name(), class_name)) {
      out.push_back(object);
    }
  }
  return out;
}

std::vector<const ModelObject*> Model::roots() const {
  std::vector<const ModelObject*> out;
  for (const auto& id : order_) {
    const ModelObject* object = find(id);
    if (object->parent_id().empty()) out.push_back(object);
  }
  return out;
}

std::vector<const ModelObject*> Model::children(
    std::string_view parent_id, std::string_view reference) const {
  std::vector<const ModelObject*> out;
  const ModelObject* parent = find(parent_id);
  if (parent == nullptr) return out;
  for (const auto& id : parent->targets(reference)) {
    if (const ModelObject* child = find(id)) out.push_back(child);
  }
  return out;
}

Status Model::validate() const {
  for (const auto& id : order_) {
    const ModelObject* object = find(id);
    const MetaClass& meta = object->meta();
    // Unknown slots cannot occur (set_attribute checks), but required
    // and enum constraints are deferred to validation.
    for (const auto& attr : meta.attributes()) {
      const Value& value = object->get(attr.name);
      if (value.is_none()) {
        if (attr.required) {
          return ConformanceError("object '" + id +
                                  "' missing required attribute '" +
                                  attr.name + "'");
        }
        continue;
      }
      if (attr.type == AttrType::kEnum) {
        auto check_literal = [&](const Value& item) -> Status {
          if (std::find(attr.enum_literals.begin(), attr.enum_literals.end(),
                        item.as_string()) == attr.enum_literals.end()) {
            return ConformanceError("object '" + id + "' attribute '" +
                                    attr.name + "' has illegal literal '" +
                                    item.as_string() + "'");
          }
          return Status::Ok();
        };
        if (attr.many) {
          for (const Value& item : value.as_list()) {
            MDSM_RETURN_IF_ERROR(check_literal(item));
          }
        } else {
          MDSM_RETURN_IF_ERROR(check_literal(value));
        }
      }
    }
    for (const auto& ref : meta.references()) {
      const auto& targets = object->targets(ref.name);
      if (ref.required && targets.empty()) {
        return ConformanceError("object '" + id +
                                "' missing required reference '" + ref.name +
                                "'");
      }
      if (!ref.many && targets.size() > 1) {
        return ConformanceError("object '" + id + "' reference '" + ref.name +
                                "' is single-valued but has " +
                                std::to_string(targets.size()) + " targets");
      }
      for (const auto& target_id : targets) {
        const ModelObject* target = find(target_id);
        if (target == nullptr) {
          return ConformanceError("object '" + id + "' reference '" +
                                  ref.name + "' targets missing object '" +
                                  target_id + "'");
        }
        if (!metamodel_->is_kind_of(target->class_name(), ref.target_class)) {
          return ConformanceError("object '" + id + "' reference '" +
                                  ref.name + "' target '" + target_id +
                                  "' has incompatible class '" +
                                  target->class_name() + "'");
        }
      }
    }
  }
  return Status::Ok();
}

Model Model::clone() const {
  Model copy(name_, metamodel_);
  for (const auto& id : order_) {
    const ModelObject* object = find(id);
    auto duplicate = std::make_unique<ModelObject>(id, object->meta());
    duplicate->parent_id_ = object->parent_id_;
    duplicate->containing_reference_ = object->containing_reference_;
    duplicate->attributes_ = object->attributes_;
    duplicate->references_ = object->references_;
    copy.objects_[id] = std::move(duplicate);
    copy.order_.push_back(id);
  }
  return copy;
}

}  // namespace mdsm::model
