#include "model/diff.hpp"

#include <algorithm>

namespace mdsm::model {

std::string_view to_string(ChangeKind kind) noexcept {
  switch (kind) {
    case ChangeKind::kAddObject: return "add-object";
    case ChangeKind::kRemoveObject: return "remove-object";
    case ChangeKind::kSetAttribute: return "set-attribute";
    case ChangeKind::kAddReference: return "add-reference";
    case ChangeKind::kRemoveReference: return "remove-reference";
  }
  return "?";
}

std::string Change::to_text() const {
  std::string out{to_string(kind)};
  out += ' ';
  out += object_id;
  if (!feature.empty()) {
    out += '.';
    out += feature;
  }
  switch (kind) {
    case ChangeKind::kSetAttribute:
      out += ' ' + old_value.to_text() + " => " + new_value.to_text();
      break;
    case ChangeKind::kAddReference:
    case ChangeKind::kRemoveReference:
      out += " -> " + target_id;
      break;
    default:
      break;
  }
  return out;
}

namespace {

bool is_containment(const ModelObject& object, std::string_view reference) {
  const MetaReference* ref = object.meta().find_reference(reference);
  return ref != nullptr && ref->containment;
}

/// Attribute/cross-reference state of one object as SetAttribute /
/// AddReference changes (used for freshly added objects).
void emit_object_state(const ModelObject& object, ChangeList& out) {
  for (const auto& [name, value] : object.attributes()) {
    Change change;
    change.kind = ChangeKind::kSetAttribute;
    change.object_id = object.id();
    change.class_name = object.class_name();
    change.parent_id = object.parent_id();
    change.containment = object.containing_reference();
    change.feature = name;
    change.new_value = value;
    out.push_back(std::move(change));
  }
  for (const auto& [name, targets] : object.references()) {
    if (is_containment(object, name)) continue;
    for (const auto& target : targets) {
      Change change;
      change.kind = ChangeKind::kAddReference;
      change.object_id = object.id();
      change.class_name = object.class_name();
      change.parent_id = object.parent_id();
      change.containment = object.containing_reference();
      change.feature = name;
      change.target_id = target;
      out.push_back(std::move(change));
    }
  }
}

}  // namespace

ChangeList diff(const Model& old_model, const Model& new_model) {
  ChangeList out;

  // Removals: objects present in old but not in new, children first
  // (reverse creation order puts contained objects after — so reverse).
  std::vector<const ModelObject*> removed;
  for (const ModelObject* object : old_model.objects()) {
    if (!new_model.contains(object->id())) removed.push_back(object);
  }
  std::reverse(removed.begin(), removed.end());
  for (const ModelObject* object : removed) {
    Change change;
    change.kind = ChangeKind::kRemoveObject;
    change.object_id = object->id();
    change.class_name = object->class_name();
    change.parent_id = object->parent_id();
    change.containment = object->containing_reference();
    out.push_back(std::move(change));
  }

  // Additions: objects in new but not old, creation order (parents first,
  // guaranteed because create_child requires an existing parent). All
  // AddObject changes come before any added object's state so that
  // cross-references among the additions — including forward ones —
  // resolve when the change list is applied.
  std::vector<const ModelObject*> added;
  for (const ModelObject* object : new_model.objects()) {
    if (old_model.contains(object->id())) continue;
    Change change;
    change.kind = ChangeKind::kAddObject;
    change.object_id = object->id();
    change.class_name = object->class_name();
    change.parent_id = object->parent_id();
    change.containment = object->containing_reference();
    out.push_back(std::move(change));
    added.push_back(object);
  }
  for (const ModelObject* object : added) {
    emit_object_state(*object, out);
  }

  // Mutations on surviving objects, in new-model creation order.
  for (const ModelObject* after : new_model.objects()) {
    const ModelObject* before = old_model.find(after->id());
    if (before == nullptr) continue;
    // Attribute slots: union of names on both sides.
    std::vector<std::string> names;
    for (const auto& [name, value] : before->attributes()) {
      names.push_back(name);
    }
    for (const auto& [name, value] : after->attributes()) {
      if (!before->has(name)) names.push_back(name);
    }
    for (const auto& name : names) {
      const Value& old_value = before->get(name);
      const Value& new_value = after->get(name);
      if (old_value == new_value) continue;
      Change change;
      change.kind = ChangeKind::kSetAttribute;
      change.object_id = after->id();
      change.class_name = after->class_name();
      change.parent_id = after->parent_id();
      change.containment = after->containing_reference();
      change.feature = name;
      change.old_value = old_value;
      change.new_value = new_value;
      out.push_back(std::move(change));
    }
    // Cross-reference slots.
    std::vector<std::string> ref_names;
    for (const auto& [name, targets] : before->references()) {
      if (!is_containment(*before, name)) ref_names.push_back(name);
    }
    for (const auto& [name, targets] : after->references()) {
      if (is_containment(*after, name)) continue;
      if (std::find(ref_names.begin(), ref_names.end(), name) ==
          ref_names.end()) {
        ref_names.push_back(name);
      }
    }
    for (const auto& name : ref_names) {
      const auto& old_targets = before->targets(name);
      const auto& new_targets = after->targets(name);
      for (const auto& target : old_targets) {
        if (std::find(new_targets.begin(), new_targets.end(), target) ==
            new_targets.end()) {
          Change change;
          change.kind = ChangeKind::kRemoveReference;
          change.object_id = after->id();
          change.class_name = after->class_name();
          change.parent_id = after->parent_id();
          change.containment = after->containing_reference();
          change.feature = name;
          change.target_id = target;
          out.push_back(std::move(change));
        }
      }
      for (const auto& target : new_targets) {
        if (std::find(old_targets.begin(), old_targets.end(), target) ==
            old_targets.end()) {
          Change change;
          change.kind = ChangeKind::kAddReference;
          change.object_id = after->id();
          change.class_name = after->class_name();
          change.parent_id = after->parent_id();
          change.containment = after->containing_reference();
          change.feature = name;
          change.target_id = target;
          out.push_back(std::move(change));
        }
      }
    }
  }
  return out;
}

Status apply(const ChangeList& changes, Model& target) {
  for (const Change& change : changes) {
    switch (change.kind) {
      case ChangeKind::kAddObject: {
        Result<ModelObject*> created =
            change.parent_id.empty()
                ? target.create(change.class_name, change.object_id)
                : target.create_child(change.parent_id, change.containment,
                                      change.class_name, change.object_id);
        if (!created.ok()) return created.status();
        break;
      }
      case ChangeKind::kRemoveObject:
        // Removing a parent may have already cascaded over this object.
        if (target.contains(change.object_id)) {
          MDSM_RETURN_IF_ERROR(target.remove(change.object_id));
        }
        break;
      case ChangeKind::kSetAttribute:
        if (change.new_value.is_none()) {
          MDSM_RETURN_IF_ERROR(
              target.unset_attribute(change.object_id, change.feature));
        } else {
          MDSM_RETURN_IF_ERROR(target.set_attribute(
              change.object_id, change.feature, change.new_value));
        }
        break;
      case ChangeKind::kAddReference:
        MDSM_RETURN_IF_ERROR(target.add_reference(
            change.object_id, change.feature, change.target_id));
        break;
      case ChangeKind::kRemoveReference: {
        // Removing the referenced object may have already cascaded this
        // reference away (Model::remove clears inbound references), and
        // the holder itself may have been removed. Both are satisfied
        // states, not errors.
        const ModelObject* holder = target.find(change.object_id);
        if (holder == nullptr) break;
        const auto& targets = holder->targets(change.feature);
        if (std::find(targets.begin(), targets.end(), change.target_id) ==
            targets.end()) {
          break;
        }
        MDSM_RETURN_IF_ERROR(target.remove_reference(
            change.object_id, change.feature, change.target_id));
        break;
      }
    }
  }
  return Status::Ok();
}

std::string summarize(const ChangeList& changes) {
  std::string out = std::to_string(changes.size()) + " change(s)";
  for (const Change& change : changes) {
    out += "\n  " + change.to_text();
  }
  return out;
}

namespace {

constexpr std::size_t kChangeSlots = 9;
constexpr std::int64_t kMaxChangeKind =
    static_cast<std::int64_t>(ChangeKind::kRemoveReference);

}  // namespace

Value encode_changes(const ChangeList& changes) {
  ValueList encoded;
  encoded.reserve(changes.size());
  for (const Change& change : changes) {
    ValueList slots;
    slots.reserve(kChangeSlots);
    slots.emplace_back(static_cast<std::int64_t>(change.kind));
    slots.emplace_back(change.object_id);
    slots.emplace_back(change.class_name);
    slots.emplace_back(change.feature);
    slots.push_back(change.old_value);
    slots.push_back(change.new_value);
    slots.emplace_back(change.target_id);
    slots.emplace_back(change.parent_id);
    slots.emplace_back(change.containment);
    encoded.emplace_back(std::move(slots));
  }
  return Value(std::move(encoded));
}

Result<ChangeList> decode_changes(const Value& payload) {
  if (!payload.is_list()) {
    return InvalidArgument("encoded change list is not a list");
  }
  ChangeList changes;
  changes.reserve(payload.as_list().size());
  for (const Value& entry : payload.as_list()) {
    if (!entry.is_list() || entry.as_list().size() != kChangeSlots) {
      return InvalidArgument("encoded change is not a " +
                             std::to_string(kChangeSlots) + "-slot list");
    }
    const ValueList& slots = entry.as_list();
    if (!slots[0].is_int() || slots[0].as_int() < 0 ||
        slots[0].as_int() > kMaxChangeKind) {
      return InvalidArgument("encoded change kind out of range");
    }
    for (std::size_t i : {1u, 2u, 3u, 6u, 7u, 8u}) {
      if (!slots[i].is_string()) {
        return InvalidArgument("encoded change slot " + std::to_string(i) +
                               " is not a string");
      }
    }
    Change change;
    change.kind = static_cast<ChangeKind>(slots[0].as_int());
    change.object_id = slots[1].as_string();
    change.class_name = slots[2].as_string();
    change.feature = slots[3].as_string();
    change.old_value = slots[4];
    change.new_value = slots[5];
    change.target_id = slots[6].as_string();
    change.parent_id = slots[7].as_string();
    change.containment = slots[8].as_string();
    changes.push_back(std::move(change));
  }
  return changes;
}

}  // namespace mdsm::model
