// Models: typed object graphs conforming to a Metamodel.
//
// A Model owns its ModelObjects (containment tree plus cross-references by
// id) and is the unit the MD-DSM layers exchange: the UI layer edits one,
// the Synthesis layer diffs two, the middleware keeps one as its runtime
// model (models@runtime), and src/core instantiates middleware from one.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/metamodel.hpp"
#include "model/value.hpp"

namespace mdsm::model {

class Model;

/// One object in a model. Identity is a model-unique string id; state is
/// attribute slots (Value) plus reference slots (target ids). Objects are
/// created and owned by their Model.
class ModelObject {
 public:
  ModelObject(std::string id, const MetaClass& meta)
      : id_(std::move(id)), meta_(&meta) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const MetaClass& meta() const noexcept { return *meta_; }
  [[nodiscard]] const std::string& class_name() const noexcept {
    return meta_->name();
  }

  /// Containment context ("" for roots).
  [[nodiscard]] const std::string& parent_id() const noexcept {
    return parent_id_;
  }
  [[nodiscard]] const std::string& containing_reference() const noexcept {
    return containing_reference_;
  }

  /// Attribute access. get() returns none for never-set attributes.
  [[nodiscard]] const Value& get(std::string_view attribute) const noexcept;
  [[nodiscard]] bool has(std::string_view attribute) const noexcept;

  /// Typed conveniences with fallbacks (for reading optional attrs).
  [[nodiscard]] std::string get_string(std::string_view attribute,
                                       std::string fallback = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view attribute,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] double get_real(std::string_view attribute,
                                double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view attribute,
                              bool fallback = false) const;

  /// Targets of a reference slot (ids), empty if unset.
  [[nodiscard]] const std::vector<std::string>& targets(
      std::string_view reference) const noexcept;

  /// All set attribute slots, sorted by name (deterministic iteration).
  [[nodiscard]] const std::map<std::string, Value, std::less<>>& attributes()
      const noexcept {
    return attributes_;
  }
  /// All set reference slots, sorted by name.
  [[nodiscard]] const std::map<std::string, std::vector<std::string>,
                               std::less<>>&
  references() const noexcept {
    return references_;
  }

 private:
  friend class Model;

  std::string id_;
  const MetaClass* meta_;
  std::string parent_id_;
  std::string containing_reference_;
  std::map<std::string, Value, std::less<>> attributes_;
  std::map<std::string, std::vector<std::string>, std::less<>> references_;
};

/// An object graph conforming (checked by validate()) to a Metamodel.
class Model {
 public:
  Model(std::string name, MetamodelPtr metamodel);

  // Move-only: a Model owns its objects; use clone() for copies.
  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const Metamodel& metamodel() const noexcept {
    return *metamodel_;
  }
  [[nodiscard]] const MetamodelPtr& metamodel_ptr() const noexcept {
    return metamodel_;
  }

  /// Create a root object. Fails on unknown/abstract class or id clash.
  Result<ModelObject*> create(const std::string& class_name,
                              const std::string& id);

  /// Create an object contained in `parent_id` via containment reference
  /// `reference`. Checks the reference exists, is containment, targets a
  /// compatible class, and respects multiplicity.
  Result<ModelObject*> create_child(const std::string& parent_id,
                                    const std::string& reference,
                                    const std::string& class_name,
                                    const std::string& id);

  /// Set an attribute with static type checking against the metaclass.
  Status set_attribute(const std::string& id, const std::string& attribute,
                       Value value);

  /// Clear an attribute slot back to unset.
  Status unset_attribute(const std::string& id, const std::string& attribute);

  /// Add a cross (non-containment) reference target.
  Status add_reference(const std::string& id, const std::string& reference,
                       const std::string& target_id);

  Status remove_reference(const std::string& id, const std::string& reference,
                          const std::string& target_id);

  /// Remove an object and (recursively) everything it contains; dangling
  /// cross-references to removed ids are also cleaned up.
  Status remove(const std::string& id);

  [[nodiscard]] const ModelObject* find(std::string_view id) const noexcept;
  [[nodiscard]] ModelObject* find(std::string_view id) noexcept;
  [[nodiscard]] bool contains(std::string_view id) const noexcept {
    return find(id) != nullptr;
  }

  /// All objects in creation order.
  [[nodiscard]] std::vector<const ModelObject*> objects() const;
  /// Objects whose class is (a subclass of) `class_name`, creation order.
  [[nodiscard]] std::vector<const ModelObject*> objects_of(
      std::string_view class_name) const;
  /// Root (uncontained) objects, creation order.
  [[nodiscard]] std::vector<const ModelObject*> roots() const;
  /// Children contained by `parent_id` via `reference`, creation order.
  [[nodiscard]] std::vector<const ModelObject*> children(
      std::string_view parent_id, std::string_view reference) const;

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }

  /// Full conformance check: required attributes/references present, enum
  /// literals legal, reference targets exist and are type-compatible.
  [[nodiscard]] Status validate() const;

  /// Deep copy (same metamodel, same ids).
  [[nodiscard]] Model clone() const;

 private:
  Status check_reference(const ModelObject& object,
                         const MetaReference& reference,
                         const std::string& target_id) const;

  std::string name_;
  MetamodelPtr metamodel_;
  std::map<std::string, std::unique_ptr<ModelObject>, std::less<>> objects_;
  std::vector<std::string> order_;  ///< creation order of ids
};

}  // namespace mdsm::model
