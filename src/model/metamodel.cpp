#include "model/metamodel.hpp"

#include <set>
#include <stdexcept>

namespace mdsm::model {

std::string_view to_string(AttrType type) noexcept {
  switch (type) {
    case AttrType::kBool: return "bool";
    case AttrType::kInt: return "int";
    case AttrType::kReal: return "real";
    case AttrType::kString: return "string";
    case AttrType::kEnum: return "enum";
  }
  return "?";
}

const MetaAttribute* MetaClass::find_attribute(
    std::string_view name) const noexcept {
  for (const auto& attr : effective_attributes_) {
    if (attr.name == name) return &attr;
  }
  return nullptr;
}

const MetaReference* MetaClass::find_reference(
    std::string_view name) const noexcept {
  for (const auto& ref : effective_references_) {
    if (ref.name == name) return &ref;
  }
  return nullptr;
}

MetaClass& Metamodel::add_class(const std::string& name,
                                const std::string& parent, bool is_abstract) {
  auto cls = std::make_unique<MetaClass>(name, parent, is_abstract);
  MetaClass* raw = cls.get();
  classes_.push_back(std::move(cls));
  by_name_[name] = raw;
  finalized_ = false;
  return *raw;
}

const MetaClass* Metamodel::find_class(std::string_view name) const noexcept {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

bool Metamodel::is_kind_of(std::string_view cls,
                           std::string_view ancestor) const noexcept {
  const MetaClass* current = find_class(cls);
  while (current != nullptr) {
    if (current->name() == ancestor) return true;
    if (current->parent().empty()) return false;
    current = find_class(current->parent());
  }
  return false;
}

std::vector<const MetaClass*> Metamodel::classes() const {
  std::vector<const MetaClass*> out;
  out.reserve(classes_.size());
  for (const auto& cls : classes_) out.push_back(cls.get());
  return out;
}

Status Metamodel::finalize() {
  // Duplicate class names are already collapsed by the map; detect them.
  if (by_name_.size() != classes_.size()) {
    return InvalidArgument("metamodel '" + name_ + "' has duplicate classes");
  }
  // Parents exist; no inheritance cycles.
  for (const auto& cls : classes_) {
    if (!cls->parent().empty() && find_class(cls->parent()) == nullptr) {
      return InvalidArgument("class '" + cls->name() +
                             "' has unknown parent '" + cls->parent() + "'");
    }
    std::set<std::string> seen{cls->name()};
    const MetaClass* current = cls.get();
    while (!current->parent().empty()) {
      current = find_class(current->parent());
      if (!seen.insert(current->name()).second) {
        return InvalidArgument("inheritance cycle at class '" + cls->name() +
                               "'");
      }
    }
  }
  // Flatten features root-first so derived classes append after base ones.
  // Iterate until all classes are resolved (parents may appear later).
  std::set<std::string> resolved;
  while (resolved.size() < classes_.size()) {
    bool progress = false;
    for (auto& cls : classes_) {
      if (resolved.contains(cls->name())) continue;
      if (!cls->parent().empty() && !resolved.contains(cls->parent())) {
        continue;
      }
      cls->effective_attributes_.clear();
      cls->effective_references_.clear();
      if (!cls->parent().empty()) {
        const MetaClass* parent = find_class(cls->parent());
        cls->effective_attributes_ = parent->effective_attributes_;
        cls->effective_references_ = parent->effective_references_;
      }
      for (const auto& attr : cls->own_attributes_) {
        cls->effective_attributes_.push_back(attr);
      }
      for (const auto& ref : cls->own_references_) {
        cls->effective_references_.push_back(ref);
      }
      resolved.insert(cls->name());
      progress = true;
    }
    if (!progress) {
      return Internal("metamodel flattening did not converge");
    }
  }
  // Per-class feature checks on the flattened tables.
  for (const auto& cls : classes_) {
    std::set<std::string> names;
    for (const auto& attr : cls->effective_attributes_) {
      if (!names.insert(attr.name).second) {
        return InvalidArgument("class '" + cls->name() +
                               "' has duplicate feature '" + attr.name + "'");
      }
      if (attr.type == AttrType::kEnum && attr.enum_literals.empty()) {
        return InvalidArgument("enum attribute '" + cls->name() + "." +
                               attr.name + "' has no literals");
      }
    }
    for (const auto& ref : cls->effective_references_) {
      if (!names.insert(ref.name).second) {
        return InvalidArgument("class '" + cls->name() +
                               "' has duplicate feature '" + ref.name + "'");
      }
      if (find_class(ref.target_class) == nullptr) {
        return InvalidArgument("reference '" + cls->name() + "." + ref.name +
                               "' targets unknown class '" +
                               ref.target_class + "'");
      }
    }
  }
  finalized_ = true;
  return Status::Ok();
}

MetamodelPtr finalize_metamodel(Metamodel metamodel) {
  Status status = metamodel.finalize();
  if (!status.ok()) {
    throw std::invalid_argument("metamodel '" + metamodel.name() +
                                "' invalid: " + status.to_string());
  }
  return std::make_shared<const Metamodel>(std::move(metamodel));
}

}  // namespace mdsm::model
