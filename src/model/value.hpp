// Attribute values for model objects.
//
// A Value is the dynamic-typed leaf of the modeling facility: every
// attribute slot of a ModelObject holds one. Values are pure data with
// value semantics (Core Guidelines C.10) so models can be cloned, diffed
// and serialized without aliasing concerns.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace mdsm::model {

class Value;
using ValueList = std::vector<Value>;

/// Discriminator for Value's alternatives.
enum class ValueKind { kNone, kBool, kInt, kReal, kString, kList };

std::string_view to_string(ValueKind kind) noexcept;

/// Dynamically typed attribute value: none | bool | int | real | string |
/// list-of-Value. Enum literals are represented as strings and checked
/// against the metamodel's literal set during conformance validation.
class Value {
 public:
  Value() noexcept = default;  ///< none
  Value(bool b) : rep_(b) {}                              // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : rep_(i) {}                      // NOLINT(google-explicit-constructor)
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}    // NOLINT(google-explicit-constructor)
  Value(double d) : rep_(d) {}                            // NOLINT(google-explicit-constructor)
  Value(std::string s) : rep_(std::move(s)) {}            // NOLINT(google-explicit-constructor)
  Value(const char* s) : rep_(std::string(s)) {}          // NOLINT(google-explicit-constructor)
  Value(ValueList items) : rep_(std::move(items)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueKind kind() const noexcept {
    return static_cast<ValueKind>(rep_.index());
  }
  [[nodiscard]] bool is_none() const noexcept {
    return kind() == ValueKind::kNone;
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return kind() == ValueKind::kBool;
  }
  [[nodiscard]] bool is_int() const noexcept {
    return kind() == ValueKind::kInt;
  }
  [[nodiscard]] bool is_real() const noexcept {
    return kind() == ValueKind::kReal;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind() == ValueKind::kString;
  }
  [[nodiscard]] bool is_list() const noexcept {
    return kind() == ValueKind::kList;
  }
  /// Int or real.
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_real();
  }

  /// Checked accessors: throw std::bad_variant_access on kind mismatch
  /// (programming error; data errors are caught by validation).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(rep_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(rep_);
  }
  [[nodiscard]] double as_real() const { return std::get<double>(rep_); }
  /// Numeric widening: int or real → double.
  [[nodiscard]] double as_number() const {
    return is_int() ? static_cast<double>(as_int()) : as_real();
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(rep_);
  }
  [[nodiscard]] const ValueList& as_list() const {
    return std::get<ValueList>(rep_);
  }
  [[nodiscard]] ValueList& as_list() { return std::get<ValueList>(rep_); }

  /// Canonical textual form, parseable back by the text format
  /// ("none", "true", "42", "3.5", "\"hi\"", "[1, 2]").
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept {
    return !(a == b);
  }

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               ValueList>
      rep_;
};

/// Quote + escape a string for the textual model format.
std::string quote(std::string_view raw);

}  // namespace mdsm::model
