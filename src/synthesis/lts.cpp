#include "synthesis/lts.hpp"

#include <stdexcept>

namespace mdsm::synthesis {

Lts& Lts::on(std::string from, model::ChangeKind kind, std::string class_name,
             std::string feature, std::string to,
             std::vector<CommandTemplate> commands,
             std::string_view guard_text, model::Value required_new_value) {
  Transition transition;
  transition.from = std::move(from);
  transition.to = std::move(to);
  transition.trigger.kind = kind;
  transition.trigger.class_name = std::move(class_name);
  transition.trigger.feature = std::move(feature);
  transition.trigger.new_value = std::move(required_new_value);
  if (!guard_text.empty()) {
    auto guard = policy::Expression::parse(guard_text);
    if (!guard.ok()) {
      // LTSs are authored in domain code; malformed guards are
      // programming errors.
      throw std::invalid_argument("bad LTS guard: " +
                                  guard.status().to_string());
    }
    transition.guard = std::move(guard.value());
  }
  transition.commands = std::move(commands);
  transitions_.push_back(std::move(transition));
  return *this;
}

}  // namespace mdsm::synthesis
