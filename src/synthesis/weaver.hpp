// Model weaving — the paper's aspect-oriented future-work feature (§IX):
// "an MD-DSM platform should be capable of simultaneously executing
// (through a weaving step) multiple related models that describe the
// different concerns of an application."
//
// weave() merges N concern models (same DSML) into one application model
// the synthesis engine can execute. Objects with the same id are unified
// across concerns; their attribute and reference slots are merged with
// configurable conflict handling.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/model.hpp"

namespace mdsm::synthesis {

enum class ConflictPolicy {
  kError,      ///< two concerns disagree on a slot value → weaving fails
  kLastWins,   ///< later concern overrides earlier
};

struct WeaveConfig {
  ConflictPolicy conflicts = ConflictPolicy::kError;
  std::string woven_name = "woven";
};

/// Merge the concern models into one model:
///  - objects are unified by id; a shared id must have the same class
///    and the same containment position in every concern that defines it;
///  - attribute slots merge; disagreements follow `conflicts`;
///  - cross-reference slots merge as target-set unions (a single-valued
///    reference with two different targets is always a conflict);
///  - containment children accumulate.
/// The woven model is validated against the DSML before being returned.
Result<model::Model> weave(const std::vector<const model::Model*>& concerns,
                           WeaveConfig config = {});

}  // namespace mdsm::synthesis
