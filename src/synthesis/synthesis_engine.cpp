#include "synthesis/synthesis_engine.hpp"

#include "common/log.hpp"
#include "model/text_format.hpp"

namespace mdsm::synthesis {

SynthesisEngine::SynthesisEngine(std::string name, model::MetamodelPtr dsml,
                                 Lts lts, const policy::ContextStore& context,
                                 Dispatch dispatch)
    : Component(std::move(name)),
      dsml_(dsml),
      lts_(std::move(lts)),
      interpreter_(lts_, dsml, context),
      dispatch_(std::move(dispatch)),
      runtime_model_("runtime", dsml) {}

Result<controller::ControlScript> SynthesisEngine::submit_model(
    model::Model new_model, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "synthesis.submit", new_model.name());
  Result<controller::ControlScript> script =
      commit_core(std::move(new_model), context);
  if (!script.ok()) return script;
  // Post-commit execution — outside the serial mutex, still inside this
  // request's "synthesis.submit" span. Independent submissions overlap
  // here. An execution failure surfaces to the submitter but does not
  // roll back the committed model.
  if (executor_ != nullptr && !script->empty()) {
    Status executed = executor_(*script, context);
    if (!executed.ok()) return executed;
  }
  return script;
}

Result<controller::ControlScript> SynthesisEngine::commit_model(
    model::Model new_model, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "synthesis.submit", new_model.name());
  return commit_core(std::move(new_model), context);
}

Result<controller::ControlScript> SynthesisEngine::commit_core(
    model::Model new_model, obs::RequestContext& context) {
  stats_.models_submitted.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->counter("synthesis.models").add();
  // Checks that do not touch shared synthesis state run before the serial
  // section so rejected submissions never contend with live ones.
  if (Status deadline = context.check_deadline("synthesis"); !deadline.ok()) {
    stats_.rejected_models.fetch_add(1, std::memory_order_relaxed);
    return deadline;
  }
  if (&new_model.metamodel() != dsml_.get()) {
    stats_.rejected_models.fetch_add(1, std::memory_order_relaxed);
    return InvalidArgument("submitted model conforms to metamodel '" +
                           new_model.metamodel().name() +
                           "', engine expects '" + dsml_->name() + "'");
  }
  Status valid = new_model.validate();
  if (!valid.ok()) {
    stats_.rejected_models.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }
  Result<controller::ControlScript> script = InvalidArgument("unreachable");
  {
    std::lock_guard lock(mutex_);
    // Model comparator.
    model::ChangeList changes = model::diff(runtime_model_, new_model);
    log_debug("synthesis") << name() << ": " << changes.size()
                           << " change(s) between runtime and new model";
    // Change interpreter. Interpreter state mutates as transitions fire;
    // on interpretation failure the engine keeps the old runtime model
    // but interpreter states may have advanced — domains treat
    // interpretation errors as fatal configuration bugs, matching the
    // paper's assumption that LTSs fully cover their DSML.
    script = interpreter_.interpret(changes, new_model);
    if (!script.ok()) {
      stats_.rejected_models.fetch_add(1, std::memory_order_relaxed);
      return script;
    }
    // Dispatcher: ship the script down, then commit the runtime model.
    if (dispatch_ != nullptr && !script->empty()) {
      Status dispatched = dispatch_(*script, context);
      if (!dispatched.ok()) {
        stats_.rejected_models.fetch_add(1, std::memory_order_relaxed);
        return dispatched;
      }
    }
    stats_.scripts_dispatched.fetch_add(1, std::memory_order_relaxed);
    stats_.commands_generated.fetch_add(script->commands.size(),
                                        std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->counter("synthesis.scripts").add();
      metrics_->counter("synthesis.commands").add(script->commands.size());
    }
    runtime_model_ = std::move(new_model);
    if (listener_ != nullptr) listener_(runtime_model_);
  }
  return script;
}

void SynthesisEngine::handle_controller_event(const std::string& topic,
                                              const model::Value& payload) {
  stats_.controller_events.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(event_mutex_);
  event_log_.push_back(topic + ": " + payload.to_text());
}

std::string SynthesisEngine::runtime_model_text() const {
  std::lock_guard lock(mutex_);
  return model::serialize_model(runtime_model_);
}

SynthesisEngine::ExportedState SynthesisEngine::export_state() const {
  std::lock_guard lock(mutex_);
  ExportedState out;
  out.runtime_model_text = model::serialize_model(runtime_model_);
  out.lts_states = interpreter_.states();
  return out;
}

Status SynthesisEngine::restore_state(
    model::Model runtime_model,
    std::map<std::string, std::string, std::less<>> lts_states) {
  if (&runtime_model.metamodel() != dsml_.get()) {
    return InvalidArgument("restored model conforms to metamodel '" +
                           runtime_model.metamodel().name() +
                           "', engine expects '" + dsml_->name() + "'");
  }
  Status valid = runtime_model.validate();
  if (!valid.ok()) return valid;
  std::lock_guard lock(mutex_);
  runtime_model_ = std::move(runtime_model);
  interpreter_.restore_states(std::move(lts_states));
  if (listener_ != nullptr) listener_(runtime_model_);
  return Status::Ok();
}

SynthesisStats SynthesisEngine::stats() const {
  SynthesisStats out;
  out.models_submitted =
      stats_.models_submitted.load(std::memory_order_relaxed);
  out.scripts_dispatched =
      stats_.scripts_dispatched.load(std::memory_order_relaxed);
  out.commands_generated =
      stats_.commands_generated.load(std::memory_order_relaxed);
  out.rejected_models = stats_.rejected_models.load(std::memory_order_relaxed);
  out.controller_events =
      stats_.controller_events.load(std::memory_order_relaxed);
  return out;
}

std::vector<std::string> SynthesisEngine::event_log() const {
  std::lock_guard lock(event_mutex_);
  return event_log_;
}

}  // namespace mdsm::synthesis
