#include "synthesis/synthesis_engine.hpp"

#include "common/log.hpp"

namespace mdsm::synthesis {

SynthesisEngine::SynthesisEngine(std::string name, model::MetamodelPtr dsml,
                                 Lts lts, const policy::ContextStore& context,
                                 Dispatch dispatch)
    : Component(std::move(name)),
      dsml_(dsml),
      lts_(std::move(lts)),
      interpreter_(lts_, dsml, context),
      dispatch_(std::move(dispatch)),
      runtime_model_("runtime", dsml) {}

Result<controller::ControlScript> SynthesisEngine::submit_model(
    model::Model new_model, obs::RequestContext& context) {
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "synthesis.submit", new_model.name());
  ++stats_.models_submitted;
  if (metrics_ != nullptr) metrics_->counter("synthesis.models").add();
  if (Status deadline = context.check_deadline("synthesis"); !deadline.ok()) {
    ++stats_.rejected_models;
    return deadline;
  }
  if (&new_model.metamodel() != dsml_.get()) {
    ++stats_.rejected_models;
    return InvalidArgument("submitted model conforms to metamodel '" +
                           new_model.metamodel().name() +
                           "', engine expects '" + dsml_->name() + "'");
  }
  Status valid = new_model.validate();
  if (!valid.ok()) {
    ++stats_.rejected_models;
    return valid;
  }
  // Model comparator.
  model::ChangeList changes = model::diff(runtime_model_, new_model);
  log_debug("synthesis") << name() << ": " << changes.size()
                         << " change(s) between runtime and new model";
  // Change interpreter. Interpreter state mutates as transitions fire;
  // on interpretation failure the engine keeps the old runtime model but
  // interpreter states may have advanced — domains treat interpretation
  // errors as fatal configuration bugs, matching the paper's assumption
  // that LTSs fully cover their DSML.
  Result<controller::ControlScript> script =
      interpreter_.interpret(changes, new_model);
  if (!script.ok()) {
    ++stats_.rejected_models;
    return script;
  }
  // Dispatcher: ship the script down, then commit the runtime model.
  if (dispatch_ != nullptr && !script->empty()) {
    Status dispatched = dispatch_(*script, context);
    if (!dispatched.ok()) {
      ++stats_.rejected_models;
      return dispatched;
    }
  }
  ++stats_.scripts_dispatched;
  stats_.commands_generated += script->commands.size();
  if (metrics_ != nullptr) {
    metrics_->counter("synthesis.scripts").add();
    metrics_->counter("synthesis.commands").add(script->commands.size());
  }
  runtime_model_ = std::move(new_model);
  if (listener_ != nullptr) listener_(runtime_model_);
  return script;
}

void SynthesisEngine::handle_controller_event(const std::string& topic,
                                              const model::Value& payload) {
  ++stats_.controller_events;
  event_log_.push_back(topic + ": " + payload.to_text());
}

}  // namespace mdsm::synthesis
