// The Synthesis layer (paper §V-A): "The main components in the synthesis
// engine are: (1) model comparator — compares the new user-defined model
// and the current runtime model to produce a change list; (2) change
// interpreter — processes the change list to generate control scripts ...
// and handles events from the Controller layer; and (3) dispatcher —
// dispatches a new runtime model to the UI and updates the currently
// executing model."
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "controller/script.hpp"
#include "model/diff.hpp"
#include "model/model.hpp"
#include "obs/request_context.hpp"
#include "runtime/component.hpp"
#include "synthesis/change_interpreter.hpp"

namespace mdsm::synthesis {

struct SynthesisStats {
  std::uint64_t models_submitted = 0;
  std::uint64_t scripts_dispatched = 0;
  std::uint64_t commands_generated = 0;
  std::uint64_t rejected_models = 0;
  std::uint64_t controller_events = 0;
};

class SynthesisEngine final : public runtime::Component {
 public:
  /// `dispatch` delivers a generated control script to the layer below
  /// (usually ControllerLayer::submit_script + process_pending, wired by
  /// the platform; in split deployments it serializes over the network).
  /// The request context rides along so the layer below continues the
  /// request's span tree.
  using Dispatch = std::function<Status(const controller::ControlScript&,
                                        obs::RequestContext&)>;
  /// Listener invoked with the updated runtime model after a successful
  /// submission ("dispatches a new runtime model to the UI").
  using ModelListener = std::function<void(const model::Model&)>;

  SynthesisEngine(std::string name, model::MetamodelPtr dsml, Lts lts,
                  const policy::ContextStore& context, Dispatch dispatch);

  void set_model_listener(ModelListener listener) {
    listener_ = std::move(listener);
  }

  /// Full synthesis cycle: validate the new model, compare against the
  /// current runtime model, interpret the changes, dispatch the script,
  /// and commit the new model as the running one. On any failure the
  /// previous runtime model stays in force (all-or-nothing semantics).
  /// Opens the request's "synthesis.submit" span.
  Result<controller::ControlScript> submit_model(model::Model new_model,
                                                 obs::RequestContext& context);
  Result<controller::ControlScript> submit_model(model::Model new_model) {
    return submit_model(std::move(new_model), obs::RequestContext::noop());
  }

  /// Platform-wide metrics sink (optional; wired by the assembler).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Events from the Controller layer (exceptional conditions); recorded
  /// and exposed so domain logic (or tests) can react — e.g. resubmitting
  /// a degraded model.
  void handle_controller_event(const std::string& topic,
                               const model::Value& payload);

  [[nodiscard]] const model::Model& runtime_model() const noexcept {
    return runtime_model_;
  }
  [[nodiscard]] const ChangeInterpreter& interpreter() const noexcept {
    return interpreter_;
  }
  [[nodiscard]] const SynthesisStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return event_log_;
  }

 private:
  model::MetamodelPtr dsml_;
  Lts lts_;
  ChangeInterpreter interpreter_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Dispatch dispatch_;
  ModelListener listener_;
  model::Model runtime_model_;  ///< "an empty model if the system has
                                ///< just been started"
  SynthesisStats stats_;
  std::vector<std::string> event_log_;
};

}  // namespace mdsm::synthesis
