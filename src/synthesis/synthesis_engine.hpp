// The Synthesis layer (paper §V-A): "The main components in the synthesis
// engine are: (1) model comparator — compares the new user-defined model
// and the current runtime model to produce a change list; (2) change
// interpreter — processes the change list to generate control scripts ...
// and handles events from the Controller layer; and (3) dispatcher —
// dispatches a new runtime model to the UI and updates the currently
// executing model."
//
// Concurrency: synthesis itself is inherently serial — each submission
// diffs against (and then replaces) the single shared runtime model — so
// the diff→interpret→dispatch→commit section runs under an internal
// mutex. Everything after the commit (the executor hook, i.e. actual
// controller/broker execution) runs *outside* that mutex, which is what
// lets independent requests overlap: the serial window is only the model
// swap, not the work.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "controller/script.hpp"
#include "model/diff.hpp"
#include "model/model.hpp"
#include "obs/request_context.hpp"
#include "runtime/component.hpp"
#include "synthesis/change_interpreter.hpp"

namespace mdsm::synthesis {

struct SynthesisStats {
  std::uint64_t models_submitted = 0;
  std::uint64_t scripts_dispatched = 0;
  std::uint64_t commands_generated = 0;
  std::uint64_t rejected_models = 0;
  std::uint64_t controller_events = 0;
};

class SynthesisEngine final : public runtime::Component {
 public:
  /// `dispatch` delivers a generated control script to the layer below
  /// *before* the runtime model commits — a dispatch failure keeps the
  /// old model in force (all-or-nothing semantics). It runs under the
  /// engine's serial mutex, so keep it cheap in concurrent deployments
  /// (the platform wires a deadline check here and does the real work in
  /// the executor hook; split deployments serialize over the network).
  /// The request context rides along so the layer below continues the
  /// request's span tree.
  using Dispatch = std::function<Status(const controller::ControlScript&,
                                        obs::RequestContext&)>;
  /// Listener invoked with the updated runtime model after a successful
  /// submission ("dispatches a new runtime model to the UI").
  using ModelListener = std::function<void(const model::Model&)>;

  SynthesisEngine(std::string name, model::MetamodelPtr dsml, Lts lts,
                  const policy::ContextStore& context, Dispatch dispatch);

  void set_model_listener(ModelListener listener) {
    listener_ = std::move(listener);
  }

  /// Post-commit execution hook: runs *after* the runtime model commits
  /// and after the serial mutex is released, still inside the request's
  /// "synthesis.submit" span. This is the parallel phase of the request
  /// pipeline — the platform wires ControllerLayer::execute_script here.
  /// Its failure surfaces to the submitter but does not roll the model
  /// back (the model swap already happened; execution is best-effort
  /// forward progress, with errors also contained per-command below).
  void set_executor(Dispatch executor) { executor_ = std::move(executor); }

  /// Full synthesis cycle: validate the new model, compare against the
  /// current runtime model, interpret the changes, dispatch the script,
  /// commit the new model as the running one, then execute via the
  /// executor hook. On any pre-commit failure the previous runtime model
  /// stays in force. Opens the request's "synthesis.submit" span.
  /// Safe to call concurrently (submissions serialize on the internal
  /// mutex up to the commit; execution overlaps).
  Result<controller::ControlScript> submit_model(model::Model new_model,
                                                 obs::RequestContext& context);
  Result<controller::ControlScript> submit_model(model::Model new_model) {
    return submit_model(std::move(new_model), obs::RequestContext::noop());
  }

  /// The commit phase alone (PR 6 staged pipeline): validate, diff,
  /// interpret, dispatch and commit under the serial mutex, but do NOT
  /// run the post-commit executor hook — the staged platform calls this
  /// from its synthesis stage and hands the returned script to the
  /// controller stage as a separate continuation, so the serial window
  /// releases before execution is even scheduled. Opens its own
  /// "synthesis.submit" span (closed on return: the commit itself never
  /// parks).
  Result<controller::ControlScript> commit_model(model::Model new_model,
                                                 obs::RequestContext& context);

  /// Platform-wide metrics sink (optional; wired by the assembler).
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Events from the Controller layer (exceptional conditions); recorded
  /// and exposed so domain logic (or tests) can react — e.g. resubmitting
  /// a degraded model. Safe to call concurrently (published from request
  /// threads mid-execution).
  void handle_controller_event(const std::string& topic,
                               const model::Value& payload);

  /// Reference to the committed runtime model. Only meaningful while no
  /// submission is in flight; concurrent readers should use
  /// runtime_model_text() instead.
  [[nodiscard]] const model::Model& runtime_model() const noexcept {
    return runtime_model_;
  }
  /// Serialized runtime model, captured under the engine's mutex — the
  /// race-free way to observe the model while submissions are running.
  [[nodiscard]] std::string runtime_model_text() const;
  [[nodiscard]] const ChangeInterpreter& interpreter() const noexcept {
    return interpreter_;
  }
  /// Snapshot of the counters (each exact; cross-counter sums may tear
  /// momentarily while submissions are in flight).
  [[nodiscard]] SynthesisStats stats() const;
  [[nodiscard]] std::vector<std::string> event_log() const;

  /// Atomic export of the synthesis-layer session state: the serialized
  /// runtime model and every tracked LTS state, captured under ONE hold
  /// of the serial mutex so the pair is mutually consistent even while
  /// submissions are racing. This is the checkpoint payload.
  struct ExportedState {
    std::string runtime_model_text;
    std::map<std::string, std::string, std::less<>> lts_states;
  };
  [[nodiscard]] ExportedState export_state() const;

  /// Inverse of export_state(): swap in `runtime_model` as the committed
  /// model and replace the interpreter's LTS states wholesale, then fire
  /// the model listener so downstream mirrors (broker runtime model)
  /// converge. The model must conform to this engine's DSML.
  Status restore_state(
      model::Model runtime_model,
      std::map<std::string, std::string, std::less<>> lts_states);

 private:
  /// Shared pre-check + serial diff→interpret→dispatch→commit section of
  /// submit_model()/commit_model() (everything except the executor hook).
  Result<controller::ControlScript> commit_core(model::Model new_model,
                                                obs::RequestContext& context);

  model::MetamodelPtr dsml_;
  Lts lts_;
  ChangeInterpreter interpreter_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Dispatch dispatch_;
  Dispatch executor_;
  ModelListener listener_;
  /// Serializes diff → interpret → dispatch → commit → listener. Also
  /// guards runtime_model_ and the interpreter's LTS state.
  mutable std::mutex mutex_;
  model::Model runtime_model_;  ///< "an empty model if the system has
                                ///< just been started"
  struct AtomicStats {
    std::atomic<std::uint64_t> models_submitted{0};
    std::atomic<std::uint64_t> scripts_dispatched{0};
    std::atomic<std::uint64_t> commands_generated{0};
    std::atomic<std::uint64_t> rejected_models{0};
    std::atomic<std::uint64_t> controller_events{0};
  };
  mutable AtomicStats stats_;
  mutable std::mutex event_mutex_;  ///< guards event_log_ only
  std::vector<std::string> event_log_;
};

}  // namespace mdsm::synthesis
