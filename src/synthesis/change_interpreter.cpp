#include "synthesis/change_interpreter.hpp"

#include "common/ids.hpp"
#include "common/strings.hpp"

namespace mdsm::synthesis {

namespace {

model::Value instantiate(const model::Value& value,
                         const model::Change& change,
                         const model::Model& new_model) {
  if (!value.is_string()) return value;
  const std::string& text = value.as_string();
  if (!starts_with(text, "%")) return value;
  if (starts_with(text, "%%")) return model::Value(text.substr(1));
  if (text == "%id") return model::Value(change.object_id);
  if (text == "%class") return model::Value(change.class_name);
  if (text == "%parent") return model::Value(change.parent_id);
  if (text == "%feature") return model::Value(change.feature);
  if (text == "%target") return model::Value(change.target_id);
  if (text == "%new") return change.new_value;
  if (text == "%old") return change.old_value;
  if (starts_with(text, "%attr:")) {
    const model::ModelObject* object = new_model.find(change.object_id);
    if (object == nullptr) return {};
    return object->get(text.substr(6));
  }
  return value;  // unknown % template passes through verbatim
}

}  // namespace

ChangeInterpreter::ChangeInterpreter(const Lts& lts,
                                     model::MetamodelPtr metamodel,
                                     const policy::ContextStore& context)
    : lts_(&lts), metamodel_(std::move(metamodel)), context_(&context) {}

bool ChangeInterpreter::trigger_matches(const Trigger& trigger,
                                        const model::Change& change) const {
  if (trigger.kind != change.kind) return false;
  if (!trigger.class_name.empty() &&
      !metamodel_->is_kind_of(change.class_name, trigger.class_name)) {
    return false;
  }
  if (!trigger.feature.empty() && trigger.feature != change.feature) {
    return false;
  }
  if (!trigger.new_value.is_none() &&
      !(trigger.new_value == change.new_value)) {
    return false;
  }
  return true;
}

Result<controller::ControlScript> ChangeInterpreter::interpret(
    const model::ChangeList& changes, const model::Model& new_model) {
  controller::ControlScript script;
  script.id = next_tagged_id("script");
  for (const model::Change& change : changes) {
    ++stats_.changes_processed;
    // Creation enters the initial state before matching, so AddObject
    // transitions are written from the initial state.
    if (change.kind == model::ChangeKind::kAddObject) {
      states_[change.object_id] = lts_->initial_state();
    }
    auto state_it = states_.find(change.object_id);
    const std::string current_state =
        state_it == states_.end() ? lts_->initial_state() : state_it->second;
    const Transition* fired = nullptr;
    bool matched_any = false;
    for (const Transition& transition : lts_->transitions()) {
      if (transition.from != current_state) continue;
      if (!trigger_matches(transition.trigger, change)) continue;
      matched_any = true;
      Result<bool> open = transition.guard.evaluate_bool(*context_);
      if (!open.ok()) return open.status();
      if (!*open) {
        ++stats_.guard_blocked;
        continue;
      }
      fired = &transition;
      break;  // first matching open transition wins (deterministic)
    }
    if (fired == nullptr) {
      if (!matched_any) ++stats_.unhandled_changes;
      // Removal of an untracked/unmatched object still clears state.
      if (change.kind == model::ChangeKind::kRemoveObject) {
        states_.erase(change.object_id);
      }
      continue;
    }
    ++stats_.transitions_fired;
    states_[change.object_id] = fired->to;
    for (const CommandTemplate& command_template : fired->commands) {
      controller::Command command;
      command.name = command_template.name;
      for (const auto& [key, value] : command_template.args) {
        command.args[key] = instantiate(value, change, new_model);
      }
      script.commands.push_back(std::move(command));
    }
    if (change.kind == model::ChangeKind::kRemoveObject) {
      states_.erase(change.object_id);
    }
  }
  return script;
}

std::string ChangeInterpreter::state_of(std::string_view object_id) const {
  auto it = states_.find(object_id);
  return it == states_.end() ? "" : it->second;
}

}  // namespace mdsm::synthesis
