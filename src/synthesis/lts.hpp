// Labeled transition systems encoding the domain-specific semantics of
// model synthesis (paper §V-A/V-B: "labeled transition systems containing
// the behavior ... the domain-specific knowledge includes the metamodel
// for the DSML, labeled transition systems containing the behavior, and
// the metamodel for the control scripts").
//
// Each model object walks its own copy of the LTS: creation puts it in
// the initial state; subsequent changes to it fire transitions whose
// triggers match the change (kind, class, feature, optional value) and
// whose guards hold. Firing a transition emits command templates that the
// change interpreter instantiates into control-script commands.
#pragma once

#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "common/status.hpp"
#include "model/diff.hpp"
#include "policy/expression.hpp"

namespace mdsm::synthesis {

/// What kind of model change fires a transition.
struct Trigger {
  model::ChangeKind kind{};
  std::string class_name;  ///< object class (or ancestor); empty = any
  std::string feature;     ///< attribute/reference name; empty = any
  model::Value new_value;  ///< required new value; none = any
};

/// Command emitted on firing. Argument values may use templates:
///   "%id" "%class" "%parent" "%feature" "%target"  — change fields
///   "%new" "%old"                                  — change values
///   "%attr:<name>"    — attribute of the changed object in the NEW model
///   "%%literal"       — escaped "%literal"
struct CommandTemplate {
  std::string name;
  broker::Args args;
};

struct Transition {
  std::string from;
  std::string to;
  Trigger trigger;
  policy::Expression guard;  ///< context guard; empty = always
  std::vector<CommandTemplate> commands;
};

class Lts {
 public:
  explicit Lts(std::string initial_state = "initial")
      : initial_(std::move(initial_state)) {}

  [[nodiscard]] const std::string& initial_state() const noexcept {
    return initial_;
  }

  void add_transition(Transition transition) {
    transitions_.push_back(std::move(transition));
  }

  /// Terse builder: from --kind(class,feature[,=value])--> to : commands.
  Lts& on(std::string from, model::ChangeKind kind, std::string class_name,
          std::string feature, std::string to,
          std::vector<CommandTemplate> commands,
          std::string_view guard_text = "",
          model::Value required_new_value = {});

  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

 private:
  std::string initial_;
  std::vector<Transition> transitions_;
};

}  // namespace mdsm::synthesis
