#include "synthesis/weaver.hpp"

#include <algorithm>

namespace mdsm::synthesis {

namespace {

Status merge_object(model::Model& woven, const model::Model& concern,
                    const model::ModelObject& object,
                    const WeaveConfig& config) {
  // All objects were created by the first weaving pass.
  model::ModelObject* existing = woven.find(object.id());
  if (existing == nullptr) {
    return Internal("weaving pass 1 missed object '" + object.id() + "'");
  }
  if (existing->class_name() != object.class_name()) {
    return ConformanceError("concern '" + concern.name() + "' declares '" +
                            object.id() + "' as " + object.class_name() +
                            " but another concern declared it as " +
                            existing->class_name());
  }
  if (existing->parent_id() != object.parent_id() ||
      existing->containing_reference() != object.containing_reference()) {
    return ConformanceError("concern '" + concern.name() + "' places '" +
                            object.id() +
                            "' at a different containment position");
  }
  // Attributes. A default-initialized slot that one concern left alone
  // and another set explicitly is not distinguishable from two explicit
  // sets (defaults materialize at creation); treat equal values as
  // agreement and let the policy decide on true disagreements.
  for (const auto& [name, value] : object.attributes()) {
    const model::Value& current = existing->get(name);
    if (current == value) continue;
    if (!current.is_none() && config.conflicts == ConflictPolicy::kError) {
      // Ignore disagreements that are merely "my default vs your
      // explicit value": if the slot equals the metamodel default in the
      // woven model, the explicit concern wins silently.
      const model::MetaAttribute* attr = existing->meta().find_attribute(name);
      bool woven_is_default =
          attr != nullptr && !attr->default_value.is_none() &&
          current == attr->default_value;
      bool concern_is_default =
          attr != nullptr && !attr->default_value.is_none() &&
          value == attr->default_value;
      if (!woven_is_default && !concern_is_default) {
        return ConformanceError(
            "weaving conflict on '" + object.id() + "." + name +
            "': " + current.to_text() + " vs " + value.to_text() +
            " (concern '" + concern.name() + "')");
      }
      if (concern_is_default) continue;  // keep the explicit woven value
    }
    MDSM_RETURN_IF_ERROR(woven.set_attribute(object.id(), name, value));
  }
  // Cross references: union (containment is driven by object creation).
  for (const auto& [name, targets] : object.references()) {
    const model::MetaReference* ref = existing->meta().find_reference(name);
    if (ref == nullptr || ref->containment) continue;
    for (const std::string& target : targets) {
      const auto& current = existing->targets(name);
      if (std::find(current.begin(), current.end(), target) !=
          current.end()) {
        continue;
      }
      if (!ref->many && !current.empty() && current[0] != target) {
        if (config.conflicts == ConflictPolicy::kError) {
          return ConformanceError("weaving conflict on single-valued '" +
                                  object.id() + "." + name + "': '" +
                                  current[0] + "' vs '" + target + "'");
        }
      }
      // Forward references inside a concern are fine here because
      // objects were created in concern order before this pass.
      Status added = woven.add_reference(object.id(), name, target);
      if (!added.ok() && added.code() != ErrorCode::kAlreadyExists) {
        return added;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<model::Model> weave(const std::vector<const model::Model*>& concerns,
                           WeaveConfig config) {
  if (concerns.empty()) {
    return InvalidArgument("weave requires at least one concern model");
  }
  for (const model::Model* concern : concerns) {
    if (concern == nullptr) return InvalidArgument("null concern model");
    if (concern->metamodel_ptr() != concerns[0]->metamodel_ptr()) {
      return InvalidArgument(
          "all concerns must conform to the same DSML (got '" +
          concern->metamodel().name() + "' vs '" +
          concerns[0]->metamodel().name() + "')");
    }
  }
  model::Model woven(config.woven_name, concerns[0]->metamodel_ptr());
  // Two passes: objects first (so cross-concern references resolve),
  // then slots.
  for (const model::Model* concern : concerns) {
    for (const model::ModelObject* object : concern->objects()) {
      if (!woven.contains(object->id())) {
        Result<model::ModelObject*> created =
            object->parent_id().empty()
                ? woven.create(object->class_name(), object->id())
                : woven.create_child(object->parent_id(),
                                     object->containing_reference(),
                                     object->class_name(), object->id());
        if (!created.ok()) {
          return Status(created.status().code(),
                        "weaving '" + concern->name() +
                            "': " + created.status().message());
        }
      }
    }
  }
  for (const model::Model* concern : concerns) {
    for (const model::ModelObject* object : concern->objects()) {
      MDSM_RETURN_IF_ERROR(merge_object(woven, *concern, *object, config));
    }
  }
  MDSM_RETURN_IF_ERROR(woven.validate());
  return woven;
}

}  // namespace mdsm::synthesis
