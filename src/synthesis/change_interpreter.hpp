// Change interpreter (paper §V-A): "processes the change list to generate
// control scripts (using the current state of the labeled transition
// system)". Tracks each model object's LTS state across submissions so a
// reconfiguration of a long-lived object continues from where its
// lifecycle left off.
#pragma once

#include <map>
#include <string>

#include "controller/script.hpp"
#include "model/diff.hpp"
#include "policy/context.hpp"
#include "synthesis/lts.hpp"

namespace mdsm::synthesis {

struct InterpreterStats {
  std::uint64_t changes_processed = 0;
  std::uint64_t transitions_fired = 0;
  std::uint64_t unhandled_changes = 0;  ///< no matching transition
  std::uint64_t guard_blocked = 0;      ///< matched but guard failed
};

class ChangeInterpreter {
 public:
  /// The metamodel is consulted for class-kind matching in triggers; the
  /// context supplies guard variables.
  ChangeInterpreter(const Lts& lts, model::MetamodelPtr metamodel,
                    const policy::ContextStore& context);

  /// Turn a change list into a control script. `new_model` supplies
  /// "%attr:" template lookups. Object states advance as transitions
  /// fire; unmatched changes are counted, not errors (a DSML may have
  /// inert attributes).
  Result<controller::ControlScript> interpret(const model::ChangeList& changes,
                                              const model::Model& new_model);

  /// Current LTS state of an object ("" if untracked).
  [[nodiscard]] std::string state_of(std::string_view object_id) const;

  [[nodiscard]] const InterpreterStats& stats() const noexcept {
    return stats_;
  }

  void reset() {
    states_.clear();
    stats_ = {};
  }

  /// Snapshot of every tracked object's LTS state — the session-
  /// checkpoint payload. Callers synchronize (the owning engine holds
  /// its commit mutex across both accessors).
  [[nodiscard]] std::map<std::string, std::string, std::less<>> states()
      const {
    return states_;
  }

  /// Replace the tracked LTS states wholesale (checkpoint import /
  /// snapshot restore). Replace — not merge — so a restored platform is
  /// byte-equal to the exporter, including absent entries.
  void restore_states(std::map<std::string, std::string, std::less<>> states) {
    states_ = std::move(states);
  }

 private:
  [[nodiscard]] bool trigger_matches(const Trigger& trigger,
                                     const model::Change& change) const;

  const Lts* lts_;
  model::MetamodelPtr metamodel_;
  const policy::ContextStore* context_;
  std::map<std::string, std::string, std::less<>> states_;
  InterpreterStats stats_;
};

}  // namespace mdsm::synthesis
