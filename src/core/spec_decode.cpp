#include "core/spec_decode.hpp"

#include <charconv>

namespace mdsm::core {

using model::Value;

Result<Value> decode_value(const model::ModelObject& arg_spec) {
  const std::string text = arg_spec.get_string("value");
  const std::string vtype = arg_spec.get_string("vtype", "string");
  if (vtype == "string") return Value(text);
  if (vtype == "bool") {
    if (text == "true") return Value(true);
    if (text == "false") return Value(false);
    return ConformanceError("arg '" + arg_spec.id() + "': bad bool '" + text +
                            "'");
  }
  if (vtype == "int") {
    std::int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      return ConformanceError("arg '" + arg_spec.id() + "': bad int '" + text +
                              "'");
    }
    return Value(value);
  }
  if (vtype == "real") {
    try {
      return Value(std::stod(text));
    } catch (const std::exception&) {
      return ConformanceError("arg '" + arg_spec.id() + "': bad real '" +
                              text + "'");
    }
  }
  return ConformanceError("arg '" + arg_spec.id() + "': unknown vtype '" +
                          vtype + "'");
}

Result<broker::Args> decode_args(const model::Model& middleware_model,
                                 const model::ModelObject& owner) {
  broker::Args out;
  for (const model::ModelObject* arg_spec :
       middleware_model.children(owner.id(), "args")) {
    Result<Value> value = decode_value(*arg_spec);
    if (!value.ok()) return value.status();
    out[arg_spec->get_string("key")] = std::move(value.value());
  }
  return out;
}

Result<policy::Expression> decode_expression(const model::ModelObject& spec,
                                             std::string_view attribute) {
  const std::string text = spec.get_string(attribute);
  Result<policy::Expression> parsed = policy::Expression::parse(text);
  if (!parsed.ok()) {
    return ParseError("object '" + spec.id() + "' attribute '" +
                      std::string(attribute) +
                      "': " + parsed.status().message());
  }
  return parsed;
}

namespace {

/// Fill the fields every step shares; returns the op string.
template <typename StepLike>
Result<std::string> decode_common(const model::Model& middleware_model,
                                  const model::ModelObject& step_spec,
                                  StepLike& step) {
  step.a = step_spec.get_string("a");
  step.b = step_spec.get_string("b");
  Result<broker::Args> args = decode_args(middleware_model, step_spec);
  if (!args.ok()) return args.status();
  step.args = std::move(args.value());
  Result<policy::Expression> guard =
      decode_expression(step_spec, "condition");
  if (!guard.ok()) return guard.status();
  step.guard = std::move(guard.value());
  return step_spec.get_string("op");
}

}  // namespace

Result<broker::ActionStep> decode_broker_step(
    const model::Model& middleware_model,
    const model::ModelObject& step_spec) {
  broker::ActionStep step;
  Result<std::string> op = decode_common(middleware_model, step_spec, step);
  if (!op.ok()) return op.status();
  if (*op == "invoke") {
    step.op = broker::StepOp::kInvoke;
  } else if (*op == "set-state") {
    step.op = broker::StepOp::kSetState;
  } else if (*op == "set-context") {
    step.op = broker::StepOp::kSetContext;
  } else if (*op == "emit") {
    step.op = broker::StepOp::kEmit;
  } else if (*op == "guard") {
    step.op = broker::StepOp::kGuard;
  } else if (*op == "result") {
    step.op = broker::StepOp::kResult;
  } else {
    return ConformanceError("step '" + step_spec.id() + "': op '" + *op +
                            "' is not legal in the Broker layer");
  }
  return step;
}

Result<controller::Instruction> decode_instruction(
    const model::Model& middleware_model,
    const model::ModelObject& step_spec) {
  controller::Instruction instruction;
  Result<std::string> op =
      decode_common(middleware_model, step_spec, instruction);
  if (!op.ok()) return op.status();
  if (*op == "broker-call") {
    instruction.op = controller::OpCode::kBrokerCall;
  } else if (*op == "call-dep") {
    instruction.op = controller::OpCode::kCallDep;
  } else if (*op == "set-mem") {
    instruction.op = controller::OpCode::kSetMem;
  } else if (*op == "erase-mem") {
    instruction.op = controller::OpCode::kEraseMem;
  } else if (*op == "emit") {
    instruction.op = controller::OpCode::kEmit;
  } else if (*op == "send") {
    instruction.op = controller::OpCode::kSend;
  } else if (*op == "guard") {
    instruction.op = controller::OpCode::kGuard;
  } else if (*op == "set-context") {
    instruction.op = controller::OpCode::kSetContext;
  } else if (*op == "result") {
    instruction.op = controller::OpCode::kResult;
  } else if (*op == "noop") {
    instruction.op = controller::OpCode::kNoop;
  } else {
    return ConformanceError("step '" + step_spec.id() + "': op '" + *op +
                            "' is not legal in the Controller layer");
  }
  return instruction;
}

Result<broker::Action> decode_broker_action(
    const model::Model& middleware_model,
    const model::ModelObject& action_spec) {
  broker::Action action;
  action.name = action_spec.get_string("name");
  action.priority = static_cast<int>(action_spec.get_int("priority"));
  Result<policy::Expression> guard = decode_expression(action_spec, "guard");
  if (!guard.ok()) return guard.status();
  action.guard = std::move(guard.value());
  for (const model::ModelObject* step_spec :
       middleware_model.children(action_spec.id(), "steps")) {
    Result<broker::ActionStep> step =
        decode_broker_step(middleware_model, *step_spec);
    if (!step.ok()) return step.status();
    action.steps.push_back(std::move(step.value()));
  }
  return action;
}

Result<controller::ControllerAction> decode_controller_action(
    const model::Model& middleware_model,
    const model::ModelObject& action_spec) {
  controller::ControllerAction action;
  action.name = action_spec.get_string("name");
  action.priority = static_cast<int>(action_spec.get_int("priority"));
  Result<policy::Expression> guard = decode_expression(action_spec, "guard");
  if (!guard.ok()) return guard.status();
  action.guard = std::move(guard.value());
  for (const model::ModelObject* step_spec :
       middleware_model.children(action_spec.id(), "steps")) {
    Result<controller::Instruction> instruction =
        decode_instruction(middleware_model, *step_spec);
    if (!instruction.ok()) return instruction.status();
    action.body.push_back(std::move(instruction.value()));
  }
  return action;
}

Result<controller::Procedure> decode_procedure(
    const model::Model& middleware_model,
    const model::ModelObject& procedure_spec) {
  controller::Procedure procedure;
  procedure.name = procedure_spec.get_string("name");
  procedure.classifier = procedure_spec.get_string("classifier");
  const Value& dependencies = procedure_spec.get("dependencies");
  if (dependencies.is_list()) {
    for (const Value& dependency : dependencies.as_list()) {
      procedure.dependencies.push_back(dependency.as_string());
    }
  }
  Result<policy::Expression> guard =
      decode_expression(procedure_spec, "guard");
  if (!guard.ok()) return guard.status();
  procedure.guard = std::move(guard.value());
  procedure.cost = procedure_spec.get_real("cost", 1.0);
  procedure.quality = procedure_spec.get_real("quality", 1.0);
  for (const model::ModelObject* eu_spec :
       middleware_model.children(procedure_spec.id(), "units")) {
    controller::ExecutionUnit unit;
    for (const model::ModelObject* step_spec :
         middleware_model.children(eu_spec->id(), "steps")) {
      Result<controller::Instruction> instruction =
          decode_instruction(middleware_model, *step_spec);
      if (!instruction.ok()) return instruction.status();
      unit.push_back(std::move(instruction.value()));
    }
    procedure.units.push_back(std::move(unit));
  }
  return procedure;
}

Result<broker::Symptom> decode_symptom(
    const model::ModelObject& symptom_spec) {
  broker::Symptom symptom;
  symptom.name = symptom_spec.get_string("name");
  symptom.trigger_topic = symptom_spec.get_string("topic");
  symptom.change_request = symptom_spec.get_string("request");
  Result<policy::Expression> condition =
      decode_expression(symptom_spec, "condition");
  if (!condition.ok()) return condition.status();
  symptom.condition = std::move(condition.value());
  return symptom;
}

Result<broker::ChangePlan> decode_change_plan(
    const model::Model& middleware_model,
    const model::ModelObject& plan_spec) {
  broker::ChangePlan plan;
  plan.name = plan_spec.get_string("name");
  plan.handles_request = plan_spec.get_string("request");
  plan.priority = static_cast<int>(plan_spec.get_int("priority"));
  Result<policy::Expression> guard = decode_expression(plan_spec, "guard");
  if (!guard.ok()) return guard.status();
  plan.guard = std::move(guard.value());
  for (const model::ModelObject* step_spec :
       middleware_model.children(plan_spec.id(), "steps")) {
    Result<broker::ActionStep> step =
        decode_broker_step(middleware_model, *step_spec);
    if (!step.ok()) return step.status();
    plan.steps.push_back(std::move(step.value()));
  }
  return plan;
}

Result<synthesis::Lts> decode_lts(const model::Model& middleware_model,
                                  const model::ModelObject& synthesis_spec) {
  synthesis::Lts lts(synthesis_spec.get_string("initial_state", "initial"));
  for (const model::ModelObject* transition_spec :
       middleware_model.children(synthesis_spec.id(), "transitions")) {
    synthesis::Transition transition;
    transition.from = transition_spec->get_string("from");
    transition.to = transition_spec->get_string("to");
    const std::string kind = transition_spec->get_string("kind");
    if (kind == "add-object") {
      transition.trigger.kind = model::ChangeKind::kAddObject;
    } else if (kind == "remove-object") {
      transition.trigger.kind = model::ChangeKind::kRemoveObject;
    } else if (kind == "set-attribute") {
      transition.trigger.kind = model::ChangeKind::kSetAttribute;
    } else if (kind == "add-reference") {
      transition.trigger.kind = model::ChangeKind::kAddReference;
    } else {
      transition.trigger.kind = model::ChangeKind::kRemoveReference;
    }
    transition.trigger.class_name = transition_spec->get_string("class");
    transition.trigger.feature = transition_spec->get_string("feature");
    const std::string vtype = transition_spec->get_string("vtype", "none");
    if (vtype != "none") {
      // Reuse the ArgSpec value decoding by building a synthetic view.
      const std::string text = transition_spec->get_string("value");
      if (vtype == "string") {
        transition.trigger.new_value = Value(text);
      } else if (vtype == "bool") {
        transition.trigger.new_value = Value(text == "true");
      } else if (vtype == "int") {
        transition.trigger.new_value =
            Value(static_cast<std::int64_t>(std::stoll(text)));
      } else if (vtype == "real") {
        transition.trigger.new_value = Value(std::stod(text));
      }
    }
    Result<policy::Expression> guard =
        decode_expression(*transition_spec, "guard");
    if (!guard.ok()) return guard.status();
    transition.guard = std::move(guard.value());
    for (const model::ModelObject* command_spec :
         middleware_model.children(transition_spec->id(), "commands")) {
      synthesis::CommandTemplate command_template;
      command_template.name = command_spec->get_string("name");
      Result<broker::Args> args = decode_args(middleware_model, *command_spec);
      if (!args.ok()) return args.status();
      command_template.args = std::move(args.value());
      transition.commands.push_back(std::move(command_template));
    }
    lts.add_transition(std::move(transition));
  }
  return lts;
}

}  // namespace mdsm::core
