// Cross-layer assurance checking — the paper's first stated research
// challenge (§IX): "the need ... to provide assurance about the
// appropriate matching between such requirements and the structure and
// functionality described in the respective domain-specific middleware
// model. Related to that, an approach is also needed to systematically
// ensure that the generated MD-DSM adequately supports the
// application-level DSML."
//
// check_platform_model() statically analyses a middleware model against
// its DSML *before* assembly and reports every cross-layer mismatch:
//
//   synthesis → DSML       triggers reference unknown classes/features
//   synthesis → controller LTS emits commands nothing will execute
//   controller → broker    broker-calls no broker handler serves
//   controller (internal)  dangling DSC references, unsatisfiable
//                          dependencies, classifier dependency cycles
//   broker (internal)      invokes on undeclared resources, handlers and
//                          plans that are dead letters
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace mdsm::core {

enum class FindingSeverity { kError, kWarning };

std::string_view to_string(FindingSeverity severity) noexcept;

struct Finding {
  FindingSeverity severity{};
  std::string layer;    ///< "synthesis" | "controller" | "broker" | "ui"
  std::string subject;  ///< offending spec object id
  std::string message;

  [[nodiscard]] std::string to_text() const;
};

struct AssuranceReport {
  std::vector<Finding> findings;

  [[nodiscard]] bool ok() const noexcept { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] std::string to_text() const;
};

/// Statically check a middleware model (conforming to
/// core::middleware_metamodel()) against the application DSML it claims
/// to support. Purely analytical: nothing is instantiated.
Result<AssuranceReport> check_platform_model(
    const model::Model& middleware_model, const model::MetamodelPtr& dsml);

}  // namespace mdsm::core
