#include "core/admission.hpp"

namespace mdsm::core {

void AdmissionController::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    shed_expired_ = nullptr;
    shed_predicted_ = nullptr;
    return;
  }
  shed_expired_ = &metrics->counter("ui.shed_expired");
  shed_predicted_ = &metrics->counter("ui.shed_predicted");
}

Status AdmissionController::admit(const obs::RequestContext& context) {
  if (!config_.enabled || !context.deadline().has_value()) {
    return Status::Ok();
  }
  const TimePoint now = context.clock().now();
  if (now >= *context.deadline()) {
    if (shed_expired_ != nullptr) shed_expired_->add();
    publish_shed(context, "expired");
    return Timeout(context.tag() + " shed at admission: deadline already "
                   "spent");
  }
  const Duration budget = *context.deadline() - now;
  const Duration predicted = predicted_latency();
  if (predicted.count() > 0 &&
      static_cast<double>(budget.count()) <
          config_.safety_factor * static_cast<double>(predicted.count())) {
    if (shed_predicted_ != nullptr) shed_predicted_->add();
    publish_shed(context, "predicted");
    return Unavailable(context.tag() + " shed at admission: budget " +
                       std::to_string(budget.count()) +
                       "us < predicted pipeline latency " +
                       std::to_string(predicted.count()) + "us");
  }
  return Status::Ok();
}

void AdmissionController::record_latency(Duration observed) noexcept {
  if (observed.count() < 0) return;
  const double sample = static_cast<double>(observed.count());
  if (!seeded_.exchange(true, std::memory_order_relaxed)) {
    ewma_us_.store(sample, std::memory_order_relaxed);
    return;
  }
  double current = ewma_us_.load(std::memory_order_relaxed);
  double next = 0.0;
  do {
    next = current + config_.ewma_alpha * (sample - current);
  } while (!ewma_us_.compare_exchange_weak(current, next,
                                           std::memory_order_relaxed));
}

void AdmissionController::publish_shed(const obs::RequestContext& context,
                                       const char* reason) {
  if (bus_ == nullptr) return;
  model::Value payload(
      model::ValueList{model::Value(reason), model::Value(context.tag())});
  runtime::Event event;
  event.topic = "request.shed";
  event.source = "ui";
  event.payload = std::move(payload);
  event.request_id = context.id();
  bus_->publish(std::move(event));
}

}  // namespace mdsm::core
