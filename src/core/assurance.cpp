#include "core/assurance.hpp"

#include <map>
#include <set>

#include "core/middleware_metamodel.hpp"

namespace mdsm::core {

std::string_view to_string(FindingSeverity severity) noexcept {
  switch (severity) {
    case FindingSeverity::kError: return "error";
    case FindingSeverity::kWarning: return "warning";
  }
  return "?";
}

std::string Finding::to_text() const {
  return std::string(to_string(severity)) + " [" + layer + "] " + subject +
         ": " + message;
}

std::size_t AssuranceReport::error_count() const noexcept {
  std::size_t count = 0;
  for (const Finding& finding : findings) {
    if (finding.severity == FindingSeverity::kError) ++count;
  }
  return count;
}

std::size_t AssuranceReport::warning_count() const noexcept {
  return findings.size() - error_count();
}

std::string AssuranceReport::to_text() const {
  std::string out = std::to_string(error_count()) + " error(s), " +
                    std::to_string(warning_count()) + " warning(s)";
  for (const Finding& finding : findings) {
    out += "\n  " + finding.to_text();
  }
  return out;
}

namespace {

class Checker {
 public:
  Checker(const model::Model& mw, const model::MetamodelPtr& dsml)
      : mw_(&mw), dsml_(dsml) {}

  Result<AssuranceReport> run() {
    auto roots = mw_->objects_of("MiddlewarePlatform");
    if (roots.size() != 1) {
      return InvalidArgument(
          "middleware model must contain exactly one MiddlewarePlatform");
    }
    root_ = roots[0];
    check_ui();
    collect_broker();
    collect_controller();
    check_controller();
    check_broker_internal();
    check_synthesis();
    return std::move(report_);
  }

 private:
  void add(FindingSeverity severity, std::string layer, std::string subject,
           std::string message) {
    report_.findings.push_back(
        {severity, std::move(layer), std::move(subject), std::move(message)});
  }

  [[nodiscard]] const model::ModelObject* single_child(
      std::string_view reference) const {
    auto children = mw_->children(root_->id(), reference);
    return children.size() == 1 ? children[0] : nullptr;
  }

  void check_ui() {
    const model::ModelObject* ui = single_child("ui");
    if (ui == nullptr) {
      add(FindingSeverity::kWarning, "ui", root_->id(),
          "no UI layer spec; platform can only be driven programmatically");
      return;
    }
    if (ui->get_string("dsml") != dsml_->name()) {
      add(FindingSeverity::kError, "ui", ui->id(),
          "declares DSML '" + ui->get_string("dsml") +
              "' but the platform is checked against '" + dsml_->name() +
              "'");
    }
  }

  // ---- broker: collect handler signals, actions, resources -------------
  void collect_broker() {
    broker_spec_ = single_child("broker");
    if (broker_spec_ == nullptr) return;
    for (const auto* handler : mw_->children(broker_spec_->id(), "handlers")) {
      broker_signals_.insert(handler->get_string("signal"));
    }
    for (const auto* action : mw_->children(broker_spec_->id(), "actions")) {
      broker_actions_.insert(action->get_string("name"));
    }
    for (const auto* resource :
         mw_->children(broker_spec_->id(), "resources")) {
      declared_resources_.insert(resource->get_string("name"));
    }
  }

  // ---- controller: collect executable commands + outgoing broker calls -
  void collect_controller() {
    controller_spec_ = single_child("controller");
    if (controller_spec_ == nullptr) return;
    for (const auto* dsc : mw_->children(controller_spec_->id(), "dscs")) {
      dscs_.insert(dsc->get_string("name"));
      executable_commands_.insert(dsc->get_string("name"));
    }
    for (const auto* binding :
         mw_->children(controller_spec_->id(), "bindings")) {
      executable_commands_.insert(binding->get_string("command"));
    }
    for (const auto* mapping :
         mw_->children(controller_spec_->id(), "mappings")) {
      executable_commands_.insert(mapping->get_string("command"));
    }
  }

  void collect_steps_broker_calls(const model::ModelObject& owner,
                                  const std::string& reference,
                                  std::vector<std::pair<std::string,
                                                        std::string>>& out) {
    for (const auto* step : mw_->children(owner.id(), reference)) {
      if (step->get_string("op") == "broker-call") {
        out.push_back({step->id(), step->get_string("a")});
      }
    }
  }

  void check_controller() {
    if (controller_spec_ == nullptr) {
      add(FindingSeverity::kError, "controller", root_->id(),
          "no controller layer spec");
      return;
    }
    std::map<std::string, int> providers;  // dsc -> #procedures
    std::multimap<std::string, std::string> dependency_edges;
    for (const auto* procedure :
         mw_->children(controller_spec_->id(), "procedures")) {
      const std::string classifier = procedure->get_string("classifier");
      if (!dscs_.contains(classifier)) {
        add(FindingSeverity::kError, "controller", procedure->id(),
            "classified by undeclared DSC '" + classifier + "'");
      } else {
        ++providers[classifier];
      }
      const model::Value& deps = procedure->get("dependencies");
      if (deps.is_list()) {
        for (const model::Value& dep : deps.as_list()) {
          if (!dep.is_string()) continue;
          if (!dscs_.contains(dep.as_string())) {
            add(FindingSeverity::kError, "controller", procedure->id(),
                "depends on undeclared DSC '" + dep.as_string() + "'");
          } else {
            dependency_edges.insert({classifier, dep.as_string()});
            required_dscs_.insert(dep.as_string());
          }
        }
      }
    }
    for (const auto* mapping :
         mw_->children(controller_spec_->id(), "mappings")) {
      const std::string dsc = mapping->get_string("dsc");
      if (!dscs_.contains(dsc)) {
        add(FindingSeverity::kError, "controller", mapping->id(),
            "maps command '" + mapping->get_string("command") +
                "' to undeclared DSC '" + dsc + "'");
      } else {
        required_dscs_.insert(dsc);
      }
    }
    // Every DSC that must be realized needs at least one provider.
    for (const std::string& dsc : required_dscs_) {
      if (providers[dsc] == 0) {
        add(FindingSeverity::kError, "controller", dsc,
            "DSC is required (as a mapping target or dependency) but no "
            "procedure is classified by it");
      }
    }
    // Classifier-level dependency cycles: fatal only if unavoidable, so
    // reported as warnings (the generator skips cyclic configurations).
    for (const auto& [from, to] : dependency_edges) {
      std::set<std::string> seen{from};
      std::vector<std::string> frontier{to};
      while (!frontier.empty()) {
        std::string current = frontier.back();
        frontier.pop_back();
        if (current == from) {
          add(FindingSeverity::kWarning, "controller", from,
              "classifier dependency cycle through '" + to + "'");
          break;
        }
        if (!seen.insert(current).second) continue;
        auto [lo, hi] = dependency_edges.equal_range(current);
        for (auto it = lo; it != hi; ++it) frontier.push_back(it->second);
      }
    }
    // Every broker-call the controller can issue must have a handler.
    std::vector<std::pair<std::string, std::string>> calls;
    for (const auto* action :
         mw_->children(controller_spec_->id(), "actions")) {
      collect_steps_broker_calls(*action, "steps", calls);
    }
    for (const auto* procedure :
         mw_->children(controller_spec_->id(), "procedures")) {
      for (const auto* unit : mw_->children(procedure->id(), "units")) {
        collect_steps_broker_calls(*unit, "steps", calls);
      }
    }
    for (const auto& [step_id, target] : calls) {
      if (!broker_signals_.contains(target)) {
        add(FindingSeverity::kError, "controller", step_id,
            "broker-call targets signal '" + target +
                "' which no broker handler serves");
      }
    }
    // Unbound controller actions are dead specs.
    std::set<std::string> bound;
    for (const auto* binding :
         mw_->children(controller_spec_->id(), "bindings")) {
      for (const std::string& target : binding->targets("actions")) {
        if (const auto* action = mw_->find(target)) {
          bound.insert(action->get_string("name"));
        }
      }
    }
    for (const auto* action :
         mw_->children(controller_spec_->id(), "actions")) {
      if (!bound.contains(action->get_string("name"))) {
        add(FindingSeverity::kWarning, "controller", action->id(),
            "action '" + action->get_string("name") +
                "' is not bound to any command");
      }
    }
  }

  void check_broker_internal() {
    if (broker_spec_ == nullptr) {
      add(FindingSeverity::kError, "broker", root_->id(),
          "no broker layer spec");
      return;
    }
    // Invokes must address declared resources (when any are declared).
    auto check_invokes = [this](const model::ModelObject& owner) {
      for (const auto* step : mw_->children(owner.id(), "steps")) {
        if (step->get_string("op") != "invoke") continue;
        const std::string resource = step->get_string("a");
        if (!declared_resources_.empty() &&
            !declared_resources_.contains(resource)) {
          add(FindingSeverity::kWarning, "broker", step->id(),
              "invokes resource '" + resource +
                  "' which is not declared in the resources list");
        }
      }
    };
    std::set<std::string> handled_actions;
    for (const auto* handler : mw_->children(broker_spec_->id(), "handlers")) {
      for (const std::string& target : handler->targets("actions")) {
        if (const auto* action = mw_->find(target)) {
          handled_actions.insert(action->get_string("name"));
        }
      }
    }
    for (const auto* action : mw_->children(broker_spec_->id(), "actions")) {
      check_invokes(*action);
      if (!handled_actions.contains(action->get_string("name"))) {
        add(FindingSeverity::kWarning, "broker", action->id(),
            "action '" + action->get_string("name") +
                "' is not reachable from any handler");
      }
    }
    // Symptoms need a plan for their request; plans without a symptom
    // can still be raised manually (warning only).
    std::set<std::string> requested;
    std::set<std::string> handled;
    for (const auto* symptom : mw_->children(broker_spec_->id(), "symptoms")) {
      requested.insert(symptom->get_string("request"));
    }
    for (const auto* plan : mw_->children(broker_spec_->id(), "plans")) {
      handled.insert(plan->get_string("request"));
      check_invokes(*plan);
    }
    for (const std::string& request : requested) {
      if (!handled.contains(request)) {
        add(FindingSeverity::kError, "broker", request,
            "symptom raises change request '" + request +
                "' but no change plan handles it");
      }
    }
  }

  void check_synthesis() {
    const model::ModelObject* synthesis = single_child("synthesis");
    if (synthesis == nullptr) return;  // LTS may be supplied in code
    std::set<std::string> reachable{
        synthesis->get_string("initial_state", "initial")};
    for (const auto* transition :
         mw_->children(synthesis->id(), "transitions")) {
      reachable.insert(transition->get_string("to"));
    }
    for (const auto* transition :
         mw_->children(synthesis->id(), "transitions")) {
      // Trigger classes/features must exist in the DSML.
      const std::string class_name = transition->get_string("class");
      const model::MetaClass* cls = nullptr;
      if (!class_name.empty()) {
        cls = dsml_->find_class(class_name);
        if (cls == nullptr) {
          add(FindingSeverity::kError, "synthesis", transition->id(),
              "trigger class '" + class_name + "' is not in DSML '" +
                  dsml_->name() + "'");
        }
      }
      const std::string feature = transition->get_string("feature");
      if (cls != nullptr && !feature.empty()) {
        const std::string kind = transition->get_string("kind");
        bool known = kind == "set-attribute"
                         ? cls->find_attribute(feature) != nullptr
                         : cls->find_reference(feature) != nullptr;
        if (!known) {
          add(FindingSeverity::kError, "synthesis", transition->id(),
              "class '" + class_name + "' has no feature '" + feature +
                  "' matching the trigger kind");
        }
      }
      // Unreachable source states are dead transitions.
      if (!reachable.contains(transition->get_string("from"))) {
        add(FindingSeverity::kWarning, "synthesis", transition->id(),
            "source state '" + transition->get_string("from") +
                "' is unreachable");
      }
      // Every emitted command must be executable by the controller.
      for (const auto* command :
           mw_->children(transition->id(), "commands")) {
        const std::string name = command->get_string("name");
        if (!executable_commands_.contains(name)) {
          add(FindingSeverity::kError, "synthesis", command->id(),
              "emits command '" + name +
                  "' which the controller can execute neither as a bound "
                  "action nor via a DSC");
        }
      }
    }
  }

  const model::Model* mw_;
  model::MetamodelPtr dsml_;
  const model::ModelObject* root_ = nullptr;
  const model::ModelObject* broker_spec_ = nullptr;
  const model::ModelObject* controller_spec_ = nullptr;
  std::set<std::string> broker_signals_;
  std::set<std::string> broker_actions_;
  std::set<std::string> declared_resources_;
  std::set<std::string> dscs_;
  std::set<std::string> required_dscs_;
  std::set<std::string> executable_commands_;
  AssuranceReport report_;
};

}  // namespace

Result<AssuranceReport> check_platform_model(
    const model::Model& middleware_model, const model::MetamodelPtr& dsml) {
  if (middleware_model.metamodel_ptr() != middleware_metamodel()) {
    return InvalidArgument(
        "assurance checking requires a model of the middleware metamodel");
  }
  if (dsml == nullptr || !dsml->finalized()) {
    return InvalidArgument("assurance checking requires a finalized DSML");
  }
  MDSM_RETURN_IF_ERROR(middleware_model.validate());
  Checker checker(middleware_model, dsml);
  return checker.run();
}

}  // namespace mdsm::core
