// Cross-platform interoperability bridge — the paper's §IX challenge,
// inspired by Bencomo et al. [29]: "their approach could inspire a
// solution for the interoperability problem across different domain
// specific middleware platforms."
//
// A PlatformBridge declaratively connects two MD-DSM platforms: events
// on the source platform's bus are translated into commands on the
// target platform's controller. Because both sides are model execution
// engines, a single rule suffices to make, say, a microgrid emergency
// open a communication session — no domain learns about the other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "broker/broker_types.hpp"
#include "common/status.hpp"
#include "core/platform.hpp"

namespace mdsm::core {

class PlatformBridge {
 public:
  /// One translation rule. Argument values may use templates:
  ///   "$payload" → the source event's payload
  ///   "$topic"   → the source event's topic
  ///   "$ctx:x"   → context variable x of the SOURCE platform
  /// anything else passes through literally.
  struct Rule {
    std::string source_topic;    ///< exact or prefix wildcard ("a.*")
    std::string target_command;  ///< executed on the target's controller
    broker::Args args;
  };

  explicit PlatformBridge(std::string name) : name_(std::move(name)) {}
  ~PlatformBridge();

  PlatformBridge(const PlatformBridge&) = delete;
  PlatformBridge& operator=(const PlatformBridge&) = delete;

  /// Install a rule between two running platforms. Both must outlive the
  /// bridge (the bridge is a peer of the platforms in the composition
  /// root that owns them).
  Status connect(Platform& source, Platform& target, Rule rule);

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return connections_.size();
  }
  [[nodiscard]] const std::vector<std::string>& log() const noexcept {
    return log_;
  }

 private:
  struct Connection {
    Platform* source;
    std::uint64_t subscription;
  };

  std::string name_;
  std::vector<Connection> connections_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<std::string> log_;
};

}  // namespace mdsm::core
