// The MD-DSM platform: composition root that assembles a running
// four-layer model execution engine from a middleware model (an instance
// of the middleware metamodel), per the process of Fig. 2:
//
//   middleware model  ──┐
//                       ├─► platform assembler ─► UI / Synthesis /
//   domain knowledge  ──┘      (component factory)  Controller / Broker
//
// The application DSML metamodel (domain knowledge for the UI and
// Synthesis layers) is supplied through PlatformConfig; the operational
// semantics (LTS, DSCs, procedures, actions) come from the middleware
// model itself. Resource adapters — the bridge to the (simulated)
// underlying resources — are installed after assembly and checked
// against the model's ResourceSpec list at start().
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker_layer.hpp"
#include "common/status.hpp"
#include "controller/controller_layer.hpp"
#include "core/admission.hpp"
#include "core/middleware_metamodel.hpp"
#include "model/text_format.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "policy/context.hpp"
#include "runtime/component_factory.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/executor.hpp"
#include "runtime/stage.hpp"
#include "synthesis/synthesis_engine.hpp"
#include "synthesis/weaver.hpp"

namespace mdsm::core {

struct PlatformConfig {
  /// The application-level DSML this platform executes. Its name must
  /// match the middleware model's UiLayerSpec.dsml attribute.
  model::MetamodelPtr dsml;
  /// LTS used when the middleware model's SynthesisLayerSpec declares no
  /// transitions (domains may prefer authoring LTSs in code).
  std::optional<synthesis::Lts> lts_override;
  /// Intent-model generation bound override (0 = take from the model).
  std::size_t max_configurations = 0;
  /// Clock used for request timestamps/deadlines (null = process steady
  /// clock). Simulated domains inject their SimClock here so request
  /// traces share the domain's virtual time.
  const Clock* clock = nullptr;
  /// Worker threads for submit_async()'s request pipeline (0 = one per
  /// hardware thread). The pool is created lazily on the first async
  /// submission; synchronous submits never pay for it.
  unsigned pipeline_threads = 0;
  /// PR 6: run submit_async() through the event-driven staged pipeline
  /// (admission → synthesis-commit → controller-execute → broker-invoke
  /// → completion as non-blocking continuations, with retry backoff and
  /// attempt timeouts on the event loop). false restores the PR-5 parked
  /// pipeline — one worker holds each request end-to-end — kept for the
  /// staged-vs-parked benchmark comparison.
  bool staged_pipeline = true;
  /// Staged pipeline only: create the event loop in manual mode (no loop
  /// thread; nothing fires until event_loop()->poll()/flush()).
  /// Deterministic tests pair this with an injected SimClock and pump
  /// the loop themselves.
  bool manual_event_loop = false;
};

/// Per-submission options for Platform::submit_async().
struct SubmitOptions {
  /// Deadline budget for the whole pipeline, queue delay included (the
  /// request context is minted at enqueue time).
  std::optional<Duration> deadline;
  /// Route through the executor's high-priority lane: control-plane
  /// requests overtake queued bulk work.
  bool high_priority = false;
  /// Free-form attributes stamped on the minted RequestContext before
  /// the pipeline sees it. The ingress front-end threads the remote
  /// request id across the wire this way ("ingress.request_id"), so the
  /// request's span tree and bus events stay correlated with the sender.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Networked-ingress settings decoded from the MiddlewarePlatform model
/// (PR 7). The ingress front-end (src/ingress) reads these at attach;
/// the defaults describe "no ingress configured".
struct IngressSettings {
  /// Endpoint name the IngressServer binds on the simulated network
  /// ("" = derive "<platform-name>.ingress").
  std::string endpoint;
  /// Shared-secret auth stub; "" disables the auth middleware.
  std::string auth_token;
  /// Deadline applied to wire submissions that carry none (0 = none).
  Duration default_deadline{0};
  /// Per-client token-bucket rate limit (requests/second sustained;
  /// 0 disables the rate-limit middleware).
  double rate_limit = 0.0;
  /// Bucket capacity in tokens (burst tolerance; 0 derives max(1, rate)).
  double rate_burst = 0.0;
  /// Clock-based TTL on the ingress dedup ledger's completed entries
  /// (PR 10): how long a settled reply stays replayable for client
  /// retries. 0 keeps entries until capacity eviction alone.
  Duration dedup_ttl{0};
};

class Platform {
 public:
  /// Assemble a platform from a middleware model. The model must conform
  /// to middleware_metamodel() and contain exactly one MiddlewarePlatform
  /// root. Assembly instantiates the layer components via the component
  /// factory and loads every spec into them.
  static Result<std::unique_ptr<Platform>> assemble(
      const model::Model& middleware_model, PlatformConfig config);

  /// Convenience: parse middleware-model text first.
  static Result<std::unique_ptr<Platform>> assemble_from_text(
      std::string_view middleware_model_text, PlatformConfig config);

  ~Platform();
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Install a resource adapter (before start()).
  Status add_resource_adapter(
      std::unique_ptr<broker::ResourceAdapter> adapter);

  /// Verify required resources are present and start all layers.
  Status start();
  /// Stop accepting submissions, drain the async pipeline and every
  /// in-flight synchronous submission, then stop the layers. Safe to call
  /// while submissions are racing in: they either complete normally or
  /// are rejected with FailedPrecondition — never torn.
  Status stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // Thread-safety (see DESIGN.md §6b for the full matrix): make_context()
  // and the context-taking submit overloads are safe to call from any
  // number of threads and execute *concurrently* — only the synthesis
  // model swap is serialized (on the synthesis engine's internal mutex);
  // classification, IM generation, and controller/broker execution all
  // overlap across requests. The context-free submit overloads and
  // submit_woven() additionally publish last_trace() state and must be
  // called from one thread at a time. start()/stop() may race anything.

  // ---- UI layer: the model-based programming interface ----------------

  /// Mint a fresh request context bound to this platform's clock and
  /// metrics registry. Pass it to submit_model_text()/submit_model() to
  /// collect a per-request trace (and optionally enforce a deadline).
  [[nodiscard]] obs::RequestContext make_context(
      std::optional<Duration> deadline = {}) {
    return obs::RequestContext(*clock_, &metrics_, deadline);
  }

  /// Parse application-model text in the platform's DSML and execute it
  /// (synthesis → controller → broker). Returns the generated script.
  /// The context-free overload mints a context internally; its trace is
  /// retained and accessible as last_trace() until the next submission.
  Result<controller::ControlScript> submit_model_text(
      std::string_view text, obs::RequestContext& context);
  Result<controller::ControlScript> submit_model_text(std::string_view text);

  /// Submit an already-built application model.
  Result<controller::ControlScript> submit_model(
      model::Model application_model, obs::RequestContext& context);
  Result<controller::ControlScript> submit_model(model::Model application_model);

  /// Completion callback for submit_async(); invoked on a pipeline
  /// worker thread. A throwing callback is contained there (counted in
  /// "ui.callback_failures" and logged), never propagated into the
  /// worker.
  using SubmitCallback =
      std::function<void(Result<controller::ControlScript>)>;

  /// Fire-and-forget submission through the N-way request pipeline
  /// (PlatformConfig.pipeline_threads workers, created lazily; queue
  /// bound and overflow policy come from the middleware model's
  /// queue_capacity / overflow_policy attributes). The text is parsed
  /// and executed on a worker; `callback` (optional) receives the
  /// outcome there. Returns non-Ok — and does NOT invoke the callback —
  /// when the submission is refused at the door: platform not running,
  /// shed by admission control (deadline spent or predicted doomed), or
  /// rejected by a full bounded queue under the kReject policy. Once Ok
  /// is returned the callback is invoked exactly once, including for
  /// requests later dropped by kShedOldest (they resolve with
  /// kUnavailable). stop() drains all queued async submissions.
  Status submit_async(std::string text, SubmitCallback callback = nullptr,
                      SubmitOptions options = {});

  /// Aspect-oriented execution (paper §IX): weave several concern models
  /// (texts in the platform's DSML) into one application model and
  /// submit the result.
  Result<controller::ControlScript> submit_woven(
      const std::vector<std::string_view>& concern_texts,
      synthesis::WeaveConfig weave_config = {});

  /// Serialized current runtime model (round-trip engineering).
  [[nodiscard]] std::string runtime_model_text() const;

  // ---- session-state checkpoint / snapshot-restore (PR 10) -------------

  /// Serialize the platform's session-visible runtime state as a
  /// model::Value tree: the committed runtime model, every tracked LTS
  /// state, ExecutionEngine memory, ContextStore entries and the broker
  /// StateManager's scalar store. `session` is a label stamped into the
  /// payload (the cluster ships one checkpoint per session key; a disk
  /// snapshot stamps the platform name). The model + LTS pair is
  /// captured atomically under the synthesis mutex; the scalar stores
  /// are point-in-time copies. Encoded with the text-format Value codec,
  /// so payload.to_text() round-trips through model::parse_value().
  Result<model::Value> export_session_state(const std::string& session);

  /// Inverse of export_session_state(): adopt the checkpointed runtime
  /// model + LTS states wholesale (so the next submission diffs against
  /// the checkpointed model and sequenced work RESUMES rather than
  /// restarts) and merge the memory/context/broker scalar entries in.
  /// Merging — not clearing — keeps an importing replica's own sessions
  /// intact; a fresh platform ends up byte-equal to the exporter.
  Status import_session_state(const model::Value& state);

  /// Disk-format snapshot of a running platform: the export tree
  /// serialized as text. restore() on a fresh platform assembled from
  /// the same middleware model round-trips byte-equal on both
  /// runtime_model_text() and a re-snapshot.
  Result<std::string> snapshot();
  Status restore(std::string_view snapshot_text);

  // ---- layer access ----------------------------------------------------

  [[nodiscard]] broker::BrokerLayer& broker() noexcept { return *broker_; }
  [[nodiscard]] controller::ControllerLayer& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] synthesis::SynthesisEngine& synthesis() noexcept {
    return *synthesis_;
  }
  [[nodiscard]] policy::ContextStore& context() noexcept { return context_; }
  [[nodiscard]] runtime::EventBus& bus() noexcept { return bus_; }
  [[nodiscard]] const broker::CommandTrace& trace() const noexcept {
    return broker_->trace();
  }
  /// UI-layer admission controller (PR 5). Configured from the
  /// middleware model's admission/admission_alpha/admission_safety
  /// attributes; exposed so domains and benches can prime or inspect the
  /// latency EWMA.
  [[nodiscard]] AdmissionController& admission() noexcept {
    return admission_;
  }
  /// Overload counters of the async request pipeline. Zeroes before the
  /// first async submission (the executor is created lazily).
  struct PipelineStats {
    std::size_t queue_capacity = 0;  ///< configured bound (0 = unbounded)
    std::size_t max_pending = 0;     ///< deepest the queue ever got
    /// Deepest the *bounded* entry backlog ever got — continuation hops
    /// excluded. This is the gauge queue_capacity governs; on the staged
    /// pipeline max_pending also counts mid-request hops and may
    /// legitimately exceed the capacity.
    std::size_t max_bounded_pending = 0;
    std::uint64_t rejections = 0;    ///< submits refused (kReject/shutdown)
    std::uint64_t shed = 0;          ///< queued tasks dropped (kShedOldest)
  };
  [[nodiscard]] PipelineStats pipeline_stats() const;
  /// Per-stage queue depth / delay statistics of the staged pipeline
  /// (empty before the first async submission, or when staged_pipeline
  /// is off). Stage order: synthesis, controller, broker, complete.
  [[nodiscard]] std::vector<runtime::StagePipeline::StageStats> stage_stats()
      const;
  /// The staged pipeline's event loop (timers for retry backoff, attempt
  /// overruns and deadline watchdogs). Null before the first async
  /// submission or when staged_pipeline is off. With manual_event_loop,
  /// tests pump poll()/flush() on it after advancing their SimClock.
  [[nodiscard]] runtime::EventLoop* event_loop() noexcept {
    return loop_.get();
  }
  /// Platform-wide metrics: counters and latency histograms recorded by
  /// every layer (and by request contexts minted via make_context()).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  /// Span tree of the most recent context-free submission (null before
  /// the first one). Context-taking submissions keep their trace in the
  /// caller's RequestContext instead.
  [[nodiscard]] const obs::Trace* last_trace() const noexcept {
    return last_context_ == nullptr ? nullptr : &last_context_->trace();
  }
  /// Context (and span tree) of the most recently *completed* staged
  /// async submission — the async counterpart of last_trace(). Returned
  /// as a shared_ptr so a concurrent completion cannot invalidate the
  /// snapshot mid-inspection. Null before the first staged completion.
  [[nodiscard]] std::shared_ptr<const obs::RequestContext>
  last_async_context() const {
    std::lock_guard lock(last_async_mutex_);
    return last_async_context_;
  }
  [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }
  /// Ingress attributes decoded from the MiddlewarePlatform model
  /// (ingress_endpoint / ingress_auth / ingress_default_deadline_us).
  [[nodiscard]] const IngressSettings& ingress_settings() const noexcept {
    return ingress_settings_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const model::MetamodelPtr& dsml() const noexcept {
    return dsml_;
  }

 private:
  Platform() = default;

  Status load_broker_spec(const model::Model& middleware_model,
                          const model::ModelObject& broker_spec);
  Status load_controller_spec(const model::Model& middleware_model,
                              const model::ModelObject& controller_spec);
  /// Invoke a SubmitCallback with exception containment: a throw is
  /// counted ("ui.callback_failures") and logged, never propagated into
  /// the pipeline worker.
  void invoke_callback(const SubmitCallback& callback,
                       Result<controller::ControlScript> outcome);

  /// One request traversing the staged pipeline (heap state; the request
  /// owns its context, root span, deadline watchdog and inflight slot).
  struct StagedRequest;
  /// Lazily create the executor — and, when staged, the stage pipeline,
  /// the event loop and the broker's async engine wiring.
  void ensure_pipeline();
  /// PR-5 parked pipeline (one worker holds the request end-to-end);
  /// kept behind staged_pipeline=false for benchmark comparison.
  Status submit_async_parked(std::string text, SubmitCallback callback,
                             SubmitOptions options);
  Status submit_async_staged(std::string text, SubmitCallback callback,
                             SubmitOptions options);
  /// Stage bodies. Each runs as a continuation on a pipeline worker.
  void stage_synthesis(std::shared_ptr<StagedRequest> request);
  void stage_controller(std::shared_ptr<StagedRequest> request);
  void stage_complete(std::shared_ptr<StagedRequest> request,
                      Status executed);
  /// Mid-pipeline hop: submit `fn` to `stage` as a never-shed
  /// continuation.
  void submit_continuation(std::size_t stage,
                           const std::shared_ptr<StagedRequest>& request,
                           runtime::Continuation fn);
  /// True when the deadline watchdog already resolved the request; the
  /// chain (single owner of the trace) closes out and releases its
  /// inflight slot here.
  bool staged_abandoned(const std::shared_ptr<StagedRequest>& request);
  /// Terminal stage bookkeeping: record latency, close the root span,
  /// resolve the callback exactly once, release the inflight slot.
  void finish_staged(const std::shared_ptr<StagedRequest>& request,
                     Result<controller::ControlScript> outcome);

  std::string name_;
  model::MetamodelPtr dsml_;
  const Clock* clock_ = &obs::steady_clock();
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::RequestContext> last_context_;
  mutable std::mutex last_async_mutex_;  ///< guards last_async_context_
  std::shared_ptr<obs::RequestContext> last_async_context_;
  runtime::EventBus bus_;
  policy::ContextStore context_;
  runtime::ComponentFactory factory_;
  std::unique_ptr<broker::BrokerLayer> broker_;
  std::unique_ptr<controller::ControllerLayer> controller_;
  std::unique_ptr<synthesis::SynthesisEngine> synthesis_;
  std::vector<std::string> required_resources_;
  std::uint64_t error_subscription_ = 0;

  /// Counts a submission as in flight for stop()'s drain. Registered
  /// *before* the running_ check so stop() can never miss a submission
  /// that goes on to pass the check.
  class InflightGuard {
   public:
    explicit InflightGuard(Platform& platform) : platform_(platform) {
      std::lock_guard lock(platform_.inflight_mutex_);
      ++platform_.inflight_;
    }
    ~InflightGuard() {
      {
        std::lock_guard lock(platform_.inflight_mutex_);
        --platform_.inflight_;
      }
      platform_.inflight_cv_.notify_all();
    }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;

   private:
    Platform& platform_;
  };

  /// Serializes start()/stop() against each other — the only remaining
  /// global lock; steady-state submissions never take it.
  mutable std::mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;
  mutable std::mutex pipeline_mutex_;  ///< guards lazy pipeline_ creation
  std::unique_ptr<runtime::Executor> pipeline_;
  /// Staged-core companions of the executor (created together under
  /// pipeline_mutex_; destroyed after the executor joins). The loop
  /// outlives the executor's drain because queued tasks may still
  /// schedule timers; after stop() those are silently dropped.
  std::unique_ptr<runtime::StagePipeline> stages_;
  std::unique_ptr<runtime::EventLoop> loop_;
  std::size_t stage_synthesis_ = 0;
  std::size_t stage_controller_ = 0;
  std::size_t stage_broker_ = 0;
  std::size_t stage_complete_ = 0;
  bool staged_ = true;
  bool manual_loop_ = false;
  unsigned pipeline_threads_ = 0;
  /// Queue bound + overflow policy decoded from the middleware model's
  /// MiddlewarePlatform attributes (thread_count is filled in at lazy
  /// pipeline creation).
  runtime::ExecutorConfig pipeline_config_;
  AdmissionController admission_;
  IngressSettings ingress_settings_;
};

}  // namespace mdsm::core
