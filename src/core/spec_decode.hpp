// Decoding middleware-model objects (instances of the middleware
// metamodel) into the live artifacts of the layer libraries. These are
// the "code templates ... parameterized with metadata from the
// middleware model" that the component factory applies.
#pragma once

#include "broker/action.hpp"
#include "broker/autonomic_manager.hpp"
#include "common/status.hpp"
#include "controller/controller_layer.hpp"
#include "controller/procedure.hpp"
#include "model/model.hpp"
#include "policy/expression.hpp"
#include "synthesis/lts.hpp"

namespace mdsm::core {

/// ArgSpec {key,value,vtype} → typed Value.
Result<model::Value> decode_value(const model::ModelObject& arg_spec);

/// All ArgSpec children of `owner` via its "args" containment.
Result<broker::Args> decode_args(const model::Model& middleware_model,
                                 const model::ModelObject& owner);

/// Parse the expression held in `attribute` ("" → empty expression).
Result<policy::Expression> decode_expression(const model::ModelObject& spec,
                                             std::string_view attribute);

/// StepSpec → broker ActionStep (validates the broker-legal op subset).
Result<broker::ActionStep> decode_broker_step(
    const model::Model& middleware_model, const model::ModelObject& step_spec);

/// StepSpec → controller Instruction (validates the controller subset).
Result<controller::Instruction> decode_instruction(
    const model::Model& middleware_model, const model::ModelObject& step_spec);

/// ActionSpec (+steps) → broker Action.
Result<broker::Action> decode_broker_action(
    const model::Model& middleware_model,
    const model::ModelObject& action_spec);

/// ActionSpec (+steps) → controller ControllerAction.
Result<controller::ControllerAction> decode_controller_action(
    const model::Model& middleware_model,
    const model::ModelObject& action_spec);

/// ProcedureSpec (+units) → controller Procedure.
Result<controller::Procedure> decode_procedure(
    const model::Model& middleware_model,
    const model::ModelObject& procedure_spec);

/// SymptomSpec → broker Symptom.
Result<broker::Symptom> decode_symptom(const model::ModelObject& symptom_spec);

/// ChangePlanSpec (+steps) → broker ChangePlan.
Result<broker::ChangePlan> decode_change_plan(
    const model::Model& middleware_model, const model::ModelObject& plan_spec);

/// SynthesisLayerSpec (+transitions) → Lts.
Result<synthesis::Lts> decode_lts(const model::Model& middleware_model,
                                  const model::ModelObject& synthesis_spec);

}  // namespace mdsm::core
