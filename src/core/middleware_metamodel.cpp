#include "core/middleware_metamodel.hpp"

namespace mdsm::core {

namespace {

using model::AttrType;
using model::MetaAttribute;
using model::MetaReference;
using model::Metamodel;
using model::Value;

Metamodel build() {
  Metamodel mm("mdsm");

  // ----- shared step/argument vocabulary ------------------------------
  auto& arg = mm.add_class("ArgSpec");
  arg.add_attribute({.name = "key", .type = AttrType::kString, .required = true});
  arg.add_attribute(
      {.name = "value", .type = AttrType::kString, .required = true});
  arg.add_attribute({.name = "vtype",
                     .type = AttrType::kEnum,
                     .enum_literals = {"string", "int", "real", "bool"},
                     .default_value = Value("string")});

  auto& step = mm.add_class("StepSpec");
  step.add_attribute(
      {.name = "op",
       .type = AttrType::kEnum,
       .required = true,
       // superset of broker steps and controller instructions; the
       // assembler validates the subset legal for each layer
       .enum_literals = {"invoke", "set-state", "set-context", "emit",
                         "guard", "result", "broker-call", "call-dep",
                         "set-mem", "erase-mem", "send", "noop"}});
  step.add_attribute({.name = "a", .type = AttrType::kString});
  step.add_attribute({.name = "b", .type = AttrType::kString});
  step.add_attribute({.name = "condition", .type = AttrType::kString});
  step.add_reference({.name = "args",
                      .target_class = "ArgSpec",
                      .containment = true,
                      .many = true});

  auto& action = mm.add_class("ActionSpec");
  action.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  action.add_attribute({.name = "guard", .type = AttrType::kString});
  action.add_attribute({.name = "priority",
                        .type = AttrType::kInt,
                        .default_value = Value(0)});
  action.add_reference({.name = "steps",
                        .target_class = "StepSpec",
                        .containment = true,
                        .many = true});

  auto& policy = mm.add_class("PolicySpec");
  policy.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  policy.add_attribute({.name = "condition", .type = AttrType::kString});
  policy.add_attribute(
      {.name = "decision", .type = AttrType::kString, .required = true});
  policy.add_attribute({.name = "priority",
                        .type = AttrType::kInt,
                        .default_value = Value(0)});
  policy.add_attribute({.name = "role",
                        .type = AttrType::kEnum,
                        .enum_literals = {"broker", "classification",
                                          "selection"},
                        .default_value = Value("broker")});

  // ----- Broker layer (Fig. 6) ----------------------------------------
  auto& handler = mm.add_class("HandlerSpec");
  handler.add_attribute(
      {.name = "signal", .type = AttrType::kString, .required = true});
  handler.add_reference({.name = "actions",
                         .target_class = "ActionSpec",
                         .containment = false,
                         .many = true,
                         .required = true});

  auto& symptom = mm.add_class("SymptomSpec");
  symptom.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  symptom.add_attribute(
      {.name = "topic", .type = AttrType::kString, .required = true});
  symptom.add_attribute({.name = "condition", .type = AttrType::kString});
  symptom.add_attribute(
      {.name = "request", .type = AttrType::kString, .required = true});

  auto& plan = mm.add_class("ChangePlanSpec");
  plan.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  plan.add_attribute(
      {.name = "request", .type = AttrType::kString, .required = true});
  plan.add_attribute({.name = "guard", .type = AttrType::kString});
  plan.add_attribute({.name = "priority",
                      .type = AttrType::kInt,
                      .default_value = Value(0)});
  plan.add_reference({.name = "steps",
                      .target_class = "StepSpec",
                      .containment = true,
                      .many = true});

  auto& resource = mm.add_class("ResourceSpec");
  resource.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  resource.add_attribute({.name = "optional",
                          .type = AttrType::kBool,
                          .default_value = Value(false)});
  // Fault-tolerance policy (decoded into a broker::InvocationPolicy; the
  // defaults reproduce fire-once semantics so existing models are
  // unaffected).
  resource.add_attribute({.name = "max_attempts",
                          .type = AttrType::kInt,
                          .default_value = Value(1)});
  resource.add_attribute({.name = "backoff_us",
                          .type = AttrType::kInt,
                          .default_value = Value(500)});
  resource.add_attribute({.name = "max_backoff_us",
                          .type = AttrType::kInt,
                          .default_value = Value(50'000)});
  resource.add_attribute({.name = "attempt_timeout_us",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  resource.add_attribute({.name = "fallback", .type = AttrType::kString});
  resource.add_attribute({.name = "breaker_window",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  resource.add_attribute({.name = "breaker_threshold",
                          .type = AttrType::kReal,
                          .default_value = Value(0.5)});
  resource.add_attribute({.name = "breaker_cooldown_us",
                          .type = AttrType::kInt,
                          .default_value = Value(10'000)});

  auto& broker = mm.add_class("BrokerLayerSpec");
  broker.add_attribute({.name = "enabled",
                        .type = AttrType::kBool,
                        .default_value = Value(true)});
  broker.add_reference({.name = "actions",
                        .target_class = "ActionSpec",
                        .containment = true,
                        .many = true});
  broker.add_reference({.name = "handlers",
                        .target_class = "HandlerSpec",
                        .containment = true,
                        .many = true});
  broker.add_reference({.name = "policies",
                        .target_class = "PolicySpec",
                        .containment = true,
                        .many = true});
  broker.add_reference({.name = "symptoms",
                        .target_class = "SymptomSpec",
                        .containment = true,
                        .many = true});
  broker.add_reference({.name = "plans",
                        .target_class = "ChangePlanSpec",
                        .containment = true,
                        .many = true});
  broker.add_reference({.name = "resources",
                        .target_class = "ResourceSpec",
                        .containment = true,
                        .many = true});

  // ----- Controller layer (Figs. 7 and 8) -----------------------------
  auto& dsc = mm.add_class("DscSpec");
  dsc.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  dsc.add_attribute({.name = "kind",
                     .type = AttrType::kEnum,
                     .enum_literals = {"operation", "data"},
                     .default_value = Value("operation")});
  dsc.add_attribute({.name = "category", .type = AttrType::kString});
  dsc.add_attribute({.name = "description", .type = AttrType::kString});

  auto& eu = mm.add_class("EuSpec");
  eu.add_reference({.name = "steps",
                    .target_class = "StepSpec",
                    .containment = true,
                    .many = true});

  auto& procedure = mm.add_class("ProcedureSpec");
  procedure.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  procedure.add_attribute(
      {.name = "classifier", .type = AttrType::kString, .required = true});
  procedure.add_attribute({.name = "dependencies",
                           .type = AttrType::kString,
                           .many = true});
  procedure.add_attribute({.name = "guard", .type = AttrType::kString});
  procedure.add_attribute({.name = "cost",
                           .type = AttrType::kReal,
                           .default_value = Value(1.0)});
  procedure.add_attribute({.name = "quality",
                           .type = AttrType::kReal,
                           .default_value = Value(1.0)});
  procedure.add_reference({.name = "units",
                           .target_class = "EuSpec",
                           .containment = true,
                           .many = true});

  auto& binding = mm.add_class("BindingSpec");
  binding.add_attribute(
      {.name = "command", .type = AttrType::kString, .required = true});
  binding.add_reference({.name = "actions",
                         .target_class = "ActionSpec",
                         .containment = false,
                         .many = true,
                         .required = true});

  auto& mapping = mm.add_class("CommandMappingSpec");
  mapping.add_attribute(
      {.name = "command", .type = AttrType::kString, .required = true});
  mapping.add_attribute(
      {.name = "dsc", .type = AttrType::kString, .required = true});

  auto& controller = mm.add_class("ControllerLayerSpec");
  controller.add_attribute({.name = "enabled",
                            .type = AttrType::kBool,
                            .default_value = Value(true)});
  controller.add_attribute({.name = "max_configurations",
                            .type = AttrType::kInt,
                            .default_value = Value(256)});
  controller.add_reference({.name = "dscs",
                            .target_class = "DscSpec",
                            .containment = true,
                            .many = true});
  controller.add_reference({.name = "procedures",
                            .target_class = "ProcedureSpec",
                            .containment = true,
                            .many = true});
  controller.add_reference({.name = "actions",
                            .target_class = "ActionSpec",
                            .containment = true,
                            .many = true});
  controller.add_reference({.name = "bindings",
                            .target_class = "BindingSpec",
                            .containment = true,
                            .many = true});
  controller.add_reference({.name = "mappings",
                            .target_class = "CommandMappingSpec",
                            .containment = true,
                            .many = true});
  controller.add_reference({.name = "policies",
                            .target_class = "PolicySpec",
                            .containment = true,
                            .many = true});

  // ----- Synthesis layer ----------------------------------------------
  auto& command_template = mm.add_class("CommandTemplateSpec");
  command_template.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  command_template.add_reference({.name = "args",
                                  .target_class = "ArgSpec",
                                  .containment = true,
                                  .many = true});

  auto& transition = mm.add_class("TransitionSpec");
  transition.add_attribute(
      {.name = "from", .type = AttrType::kString, .required = true});
  transition.add_attribute(
      {.name = "to", .type = AttrType::kString, .required = true});
  transition.add_attribute(
      {.name = "kind",
       .type = AttrType::kEnum,
       .required = true,
       .enum_literals = {"add-object", "remove-object", "set-attribute",
                         "add-reference", "remove-reference"}});
  transition.add_attribute({.name = "class", .type = AttrType::kString});
  transition.add_attribute({.name = "feature", .type = AttrType::kString});
  transition.add_attribute({.name = "value", .type = AttrType::kString});
  transition.add_attribute({.name = "vtype",
                            .type = AttrType::kEnum,
                            .enum_literals = {"string", "int", "real",
                                              "bool", "none"},
                            .default_value = Value("none")});
  transition.add_attribute({.name = "guard", .type = AttrType::kString});
  transition.add_reference({.name = "commands",
                            .target_class = "CommandTemplateSpec",
                            .containment = true,
                            .many = true});

  auto& synthesis = mm.add_class("SynthesisLayerSpec");
  synthesis.add_attribute({.name = "enabled",
                           .type = AttrType::kBool,
                           .default_value = Value(true)});
  synthesis.add_attribute({.name = "initial_state",
                           .type = AttrType::kString,
                           .default_value = Value("initial")});
  synthesis.add_reference({.name = "transitions",
                           .target_class = "TransitionSpec",
                           .containment = true,
                           .many = true});

  // ----- UI layer + platform root -------------------------------------
  auto& ui = mm.add_class("UiLayerSpec");
  ui.add_attribute({.name = "enabled",
                    .type = AttrType::kBool,
                    .default_value = Value(true)});
  ui.add_attribute(
      {.name = "dsml", .type = AttrType::kString, .required = true});

  auto& platform = mm.add_class("MiddlewarePlatform");
  platform.add_attribute(
      {.name = "name", .type = AttrType::kString, .required = true});
  platform.add_attribute({.name = "domain", .type = AttrType::kString});
  // Overload protection (decoded into the async pipeline's bounded
  // queue and the UI-layer admission controller; the defaults reproduce
  // the unbounded, admit-everything behaviour so existing models are
  // unaffected).
  platform.add_attribute({.name = "queue_capacity",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  platform.add_attribute({.name = "overflow_policy",
                          .type = AttrType::kEnum,
                          .enum_literals = {"reject", "block", "shed-oldest"},
                          .default_value = Value("reject")});
  platform.add_attribute({.name = "admission",
                          .type = AttrType::kBool,
                          .default_value = Value(false)});
  platform.add_attribute({.name = "admission_alpha",
                          .type = AttrType::kReal,
                          .default_value = Value(0.2)});
  platform.add_attribute({.name = "admission_safety",
                          .type = AttrType::kReal,
                          .default_value = Value(1.0)});
  // Networked ingress front-end (PR 7): where the platform listens on
  // the simulated network, the shared-secret auth stub, and the deadline
  // stamped on wire submissions that carry none. An empty endpoint means
  // "derive <platform-name>.ingress" at attach time.
  platform.add_attribute({.name = "ingress_endpoint",
                          .type = AttrType::kString,
                          .default_value = Value("")});
  platform.add_attribute({.name = "ingress_auth",
                          .type = AttrType::kString,
                          .default_value = Value("")});
  platform.add_attribute({.name = "ingress_default_deadline_us",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  // Per-client token-bucket rate limit at the ingress door (PR 8):
  // sustained requests/second per client endpoint and the burst the
  // bucket tolerates (0 limit disables the middleware; 0 burst derives
  // max(1, rate)).
  platform.add_attribute({.name = "ingress_rate_limit",
                          .type = AttrType::kReal,
                          .default_value = Value(0.0)});
  platform.add_attribute({.name = "ingress_rate_burst",
                          .type = AttrType::kReal,
                          .default_value = Value(0.0)});
  // Clock-based TTL on *completed* ingress dedup-ledger entries (PR 10);
  // 0 keeps capacity eviction as the only bound. In-flight entries are
  // never evicted regardless.
  platform.add_attribute({.name = "ingress_dedup_ttl_us",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  // Session-state replication cadence (PR 10): a cluster front-end ships
  // a session checkpoint to the ring replica after every N completed
  // sequenced requests for that session (0 disables checkpointing).
  platform.add_attribute({.name = "checkpoint_interval",
                          .type = AttrType::kInt,
                          .default_value = Value(0)});
  platform.add_reference({.name = "broker",
                          .target_class = "BrokerLayerSpec",
                          .containment = true,
                          .many = false});
  platform.add_reference({.name = "controller",
                          .target_class = "ControllerLayerSpec",
                          .containment = true,
                          .many = false});
  platform.add_reference({.name = "synthesis",
                          .target_class = "SynthesisLayerSpec",
                          .containment = true,
                          .many = false});
  platform.add_reference({.name = "ui",
                          .target_class = "UiLayerSpec",
                          .containment = true,
                          .many = false});
  return mm;
}

}  // namespace

model::MetamodelPtr middleware_metamodel() {
  static model::MetamodelPtr instance = model::finalize_metamodel(build());
  return instance;
}

}  // namespace mdsm::core
