// The common middleware metamodel (paper Figs. 5 and 6): the
// domain-independent building blocks from which middleware models are
// created. A middleware model instantiated from this metamodel fully
// describes one platform configuration: the Broker layer's actions,
// handlers, policies and autonomic rules; the Controller layer's DSCs,
// procedures, predefined actions, bindings and policies; the Synthesis
// layer's labeled transition system; and the UI layer's DSML binding.
//
// Structure (containment tree):
//
//   MiddlewarePlatform
//   ├─ broker     : BrokerLayerSpec
//   │   ├─ actions   : ActionSpec*      (steps: StepSpec*, args: ArgSpec*)
//   │   ├─ handlers  : HandlerSpec*     (→ actions)
//   │   ├─ policies  : PolicySpec*
//   │   ├─ symptoms  : SymptomSpec*
//   │   ├─ plans     : ChangePlanSpec*  (steps: StepSpec*)
//   │   └─ resources : ResourceSpec*    (adapters that must be present)
//   ├─ controller : ControllerLayerSpec
//   │   ├─ dscs       : DscSpec*
//   │   ├─ procedures : ProcedureSpec*  (units: EuSpec*, each with StepSpec*)
//   │   ├─ actions    : ActionSpec*
//   │   ├─ bindings   : BindingSpec*    (→ actions)
//   │   ├─ mappings   : CommandMappingSpec*
//   │   └─ policies   : PolicySpec*     (role: classification|selection)
//   ├─ synthesis  : SynthesisLayerSpec
//   │   └─ transitions : TransitionSpec* (commands: CommandTemplateSpec*)
//   └─ ui         : UiLayerSpec (dsml name)
#pragma once

#include "model/metamodel.hpp"

namespace mdsm::core {

/// The shared, finalized middleware metamodel (process-wide singleton —
/// metamodels are immutable after finalize()).
model::MetamodelPtr middleware_metamodel();

}  // namespace mdsm::core
