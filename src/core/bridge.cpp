#include "core/bridge.hpp"

#include "common/strings.hpp"

namespace mdsm::core {

PlatformBridge::~PlatformBridge() {
  for (const Connection& connection : connections_) {
    connection.source->bus().unsubscribe(connection.subscription);
  }
}

Status PlatformBridge::connect(Platform& source, Platform& target,
                               Rule rule) {
  if (&source == &target) {
    return InvalidArgument("bridge endpoints must be distinct platforms");
  }
  if (rule.source_topic.empty() || rule.target_command.empty()) {
    return InvalidArgument("bridge rule needs a source topic and a target "
                           "command");
  }
  Platform* source_ptr = &source;
  Platform* target_ptr = &target;
  Rule stored = std::move(rule);
  std::uint64_t subscription = source.bus().subscribe(
      stored.source_topic,
      [this, source_ptr, target_ptr,
       stored](const runtime::Event& event) {
        broker::Args resolved;
        for (const auto& [key, value] : stored.args) {
          if (value.is_string() && value.as_string() == "$payload") {
            resolved[key] = event.payload;
          } else if (value.is_string() && value.as_string() == "$topic") {
            resolved[key] = model::Value(event.topic);
          } else if (value.is_string() &&
                     starts_with(value.as_string(), "$ctx:")) {
            resolved[key] =
                source_ptr->context().get(value.as_string().substr(5));
          } else {
            resolved[key] = value;
          }
        }
        Result<model::Value> outcome = target_ptr->controller()
                                           .execute_command(
                                               {stored.target_command,
                                                std::move(resolved)});
        if (outcome.ok()) {
          ++forwarded_;
          log_.push_back(name_ + ": " + event.topic + " -> " +
                         stored.target_command);
        } else {
          ++failed_;
          log_.push_back(name_ + ": " + event.topic + " -> " +
                         stored.target_command + " FAILED: " +
                         outcome.status().to_string());
        }
      });
  connections_.push_back({source_ptr, subscription});
  return Status::Ok();
}

}  // namespace mdsm::core
