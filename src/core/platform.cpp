#include "core/platform.hpp"

#include "common/log.hpp"
#include "core/spec_decode.hpp"

namespace mdsm::core {

Result<std::unique_ptr<Platform>> Platform::assemble_from_text(
    std::string_view middleware_model_text, PlatformConfig config) {
  Result<model::Model> middleware_model =
      model::parse_model(middleware_model_text, middleware_metamodel());
  if (!middleware_model.ok()) return middleware_model.status();
  return assemble(*middleware_model, std::move(config));
}

Result<std::unique_ptr<Platform>> Platform::assemble(
    const model::Model& middleware_model, PlatformConfig config) {
  if (middleware_model.metamodel_ptr() != middleware_metamodel()) {
    return InvalidArgument(
        "middleware model must conform to the middleware metamodel");
  }
  MDSM_RETURN_IF_ERROR(middleware_model.validate());
  auto platforms = middleware_model.objects_of("MiddlewarePlatform");
  if (platforms.size() != 1) {
    return InvalidArgument("middleware model must contain exactly one "
                           "MiddlewarePlatform root, found " +
                           std::to_string(platforms.size()));
  }
  const model::ModelObject& root = *platforms[0];
  if (config.dsml == nullptr) {
    return InvalidArgument("PlatformConfig.dsml is required");
  }
  // UI layer spec: the declared DSML must be the one supplied.
  auto ui_specs = middleware_model.children(root.id(), "ui");
  if (ui_specs.size() == 1) {
    const std::string declared = ui_specs[0]->get_string("dsml");
    if (declared != config.dsml->name()) {
      return ConformanceError("middleware model binds DSML '" + declared +
                              "' but platform was given '" +
                              config.dsml->name() + "'");
    }
  }

  // Core Guidelines C.50: private ctor + factory for multi-stage init.
  std::unique_ptr<Platform> platform(new Platform());
  platform->name_ = root.get_string("name");
  platform->dsml_ = config.dsml;
  platform->pipeline_threads_ = config.pipeline_threads;
  platform->staged_ = config.staged_pipeline;
  platform->manual_loop_ = config.manual_event_loop;
  if (config.clock != nullptr) platform->clock_ = config.clock;

  // Overload protection is model-driven (PR 5): the MiddlewarePlatform
  // root declares the async pipeline's queue bound and overflow policy
  // plus the UI-layer admission controller, exactly like ResourceSpec
  // declares fault-tolerance. The defaults reproduce the pre-PR-5
  // unbounded, admit-everything platform.
  platform->pipeline_config_.queue_capacity =
      static_cast<std::size_t>(root.get_int("queue_capacity", 0));
  const std::string overflow = root.get_string("overflow_policy", "reject");
  platform->pipeline_config_.overflow_policy =
      overflow == "block"         ? runtime::OverflowPolicy::kBlock
      : overflow == "shed-oldest" ? runtime::OverflowPolicy::kShedOldest
                                  : runtime::OverflowPolicy::kReject;
  AdmissionConfig admission_config;
  admission_config.enabled = root.get_bool("admission", false);
  admission_config.ewma_alpha = root.get_real("admission_alpha", 0.2);
  admission_config.safety_factor = root.get_real("admission_safety", 1.0);
  platform->admission_.configure(admission_config);
  platform->admission_.set_metrics(&platform->metrics_);
  platform->admission_.set_bus(&platform->bus_);

  // Networked ingress (PR 7): the front-end's endpoint name, auth stub
  // and default wire deadline are model attributes too — a split
  // deployment is described by the same middleware model that describes
  // the platform it fronts.
  platform->ingress_settings_.endpoint = root.get_string("ingress_endpoint");
  platform->ingress_settings_.auth_token = root.get_string("ingress_auth");
  platform->ingress_settings_.default_deadline =
      Duration(root.get_int("ingress_default_deadline_us", 0));
  platform->ingress_settings_.rate_limit =
      root.get_real("ingress_rate_limit", 0.0);
  platform->ingress_settings_.rate_burst =
      root.get_real("ingress_rate_burst", 0.0);
  platform->ingress_settings_.dedup_ttl =
      Duration(root.get_int("ingress_dedup_ttl_us", 0));

  // The component factory holds the layer "code templates"; assembly then
  // instantiates them with the model objects as metadata (paper §V-A).
  runtime::EventBus& bus = platform->bus_;
  policy::ContextStore& context = platform->context_;
  MDSM_RETURN_IF_ERROR(platform->factory_.register_template(
      "BrokerLayerSpec",
      [&bus, &context](const model::ModelObject& spec, const model::Model&)
          -> Result<std::unique_ptr<runtime::Component>> {
        return Result<std::unique_ptr<runtime::Component>>(
            std::make_unique<broker::BrokerLayer>(spec.id(), bus, context));
      }));

  // ---- Broker layer ----------------------------------------------------
  auto broker_specs = middleware_model.children(root.id(), "broker");
  if (broker_specs.size() == 1 && broker_specs[0]->get_bool("enabled", true)) {
    Result<std::unique_ptr<runtime::Component>> component =
        platform->factory_.instantiate(*broker_specs[0], middleware_model);
    if (!component.ok()) return component.status();
    platform->broker_.reset(
        static_cast<broker::BrokerLayer*>(component.value().release()));
    MDSM_RETURN_IF_ERROR(
        platform->load_broker_spec(middleware_model, *broker_specs[0]));
  } else {
    return InvalidArgument("middleware model must define an enabled broker "
                           "layer (suppressing it is only legal in split "
                           "deployments, which assemble partial platforms "
                           "programmatically)");
  }

  // ---- Controller layer ------------------------------------------------
  auto controller_specs = middleware_model.children(root.id(), "controller");
  if (controller_specs.size() != 1) {
    return InvalidArgument("middleware model must define a controller layer");
  }
  controller::GeneratorConfig generator_config;
  std::int64_t model_bound = controller_specs[0]->get_int(
      "max_configurations", 256);
  generator_config.max_configurations =
      config.max_configurations != 0
          ? config.max_configurations
          : static_cast<std::size_t>(model_bound);
  platform->controller_ = std::make_unique<controller::ControllerLayer>(
      controller_specs[0]->id(), *platform->broker_, bus, context,
      generator_config);
  MDSM_RETURN_IF_ERROR(
      platform->load_controller_spec(middleware_model, *controller_specs[0]));

  // ---- Synthesis layer ---------------------------------------------------
  auto synthesis_specs = middleware_model.children(root.id(), "synthesis");
  synthesis::Lts lts;
  if (synthesis_specs.size() == 1 &&
      !middleware_model.children(synthesis_specs[0]->id(), "transitions")
           .empty()) {
    Result<synthesis::Lts> decoded =
        decode_lts(middleware_model, *synthesis_specs[0]);
    if (!decoded.ok()) return decoded.status();
    lts = std::move(decoded.value());
  } else if (config.lts_override.has_value()) {
    lts = std::move(*config.lts_override);
  } else {
    return InvalidArgument(
        "no synthesis semantics: middleware model declares no transitions "
        "and no LTS override was supplied");
  }
  controller::ControllerLayer* controller = platform->controller_.get();
  platform->synthesis_ = std::make_unique<synthesis::SynthesisEngine>(
      synthesis_specs.empty() ? "synthesis" : synthesis_specs[0]->id(),
      config.dsml, std::move(lts), context,
      // Pre-commit dispatch runs under the synthesis serial mutex, so it
      // must stay cheap: just the controller-crossing deadline check (a
      // dispatch failure keeps the old runtime model in force).
      [](const controller::ControlScript&, obs::RequestContext& request) {
        return request.check_deadline("controller");
      });
  // Post-commit execution — the parallel phase. execute_script opens the
  // "controller.script" span covering every command plus the drain of the
  // events they raised, nested (like the old in-dispatch crossing) under
  // the request's "synthesis.submit" span.
  platform->synthesis_->set_executor(
      [controller](const controller::ControlScript& script,
                   obs::RequestContext& request) {
        return controller->execute_script(script, request);
      });

  // Every layer records into the platform-wide registry (stable address:
  // the platform is heap-allocated and non-movable).
  platform->broker_->set_metrics(&platform->metrics_);
  platform->controller_->set_metrics(&platform->metrics_);
  platform->synthesis_->set_metrics(&platform->metrics_);

  // Controller exceptional conditions flow back to the Synthesis layer
  // ("handles events from the Controller layer", paper §V-A).
  synthesis::SynthesisEngine* synthesis = platform->synthesis_.get();
  platform->error_subscription_ = bus.subscribe(
      "controller.error", [synthesis](const runtime::Event& event) {
        synthesis->handle_controller_event(event.topic, event.payload);
      });

  // models@runtime at the broker layer: the State Manager mirrors the
  // committed application model so broker-level introspection (and
  // autonomic rules in future) can consult it.
  broker::BrokerLayer* broker = platform->broker_.get();
  platform->synthesis_->set_model_listener(
      [broker](const model::Model& committed) {
        broker->state().set_runtime_model(committed.clone());
      });

  return platform;
}

Platform::~Platform() {
  // Join the async pipeline first: queued submissions may still reach
  // into every layer. The loop stops before the executor drains — no
  // more timer-driven resumes — but stays alive through the drain so
  // draining tasks can still call schedule() (dropped silently after
  // stop()). Then the stage pipeline (holds Executor*), then the loop.
  running_.store(false, std::memory_order_release);
  if (loop_ != nullptr) loop_->stop();
  pipeline_.reset();
  stages_.reset();
  loop_.reset();
  if (error_subscription_ != 0) bus_.unsubscribe(error_subscription_);
}

Status Platform::load_broker_spec(const model::Model& middleware_model,
                                  const model::ModelObject& broker_spec) {
  for (const model::ModelObject* action_spec :
       middleware_model.children(broker_spec.id(), "actions")) {
    Result<broker::Action> action =
        decode_broker_action(middleware_model, *action_spec);
    if (!action.ok()) return action.status();
    MDSM_RETURN_IF_ERROR(broker_->register_action(std::move(action.value())));
  }
  for (const model::ModelObject* handler_spec :
       middleware_model.children(broker_spec.id(), "handlers")) {
    std::vector<std::string> action_names;
    for (const std::string& target : handler_spec->targets("actions")) {
      const model::ModelObject* action_spec = middleware_model.find(target);
      if (action_spec == nullptr) {
        return ConformanceError("handler '" + handler_spec->id() +
                                "' references missing action '" + target +
                                "'");
      }
      action_names.push_back(action_spec->get_string("name"));
    }
    MDSM_RETURN_IF_ERROR(broker_->bind_handler(
        handler_spec->get_string("signal"), std::move(action_names)));
  }
  for (const model::ModelObject* policy_spec :
       middleware_model.children(broker_spec.id(), "policies")) {
    MDSM_RETURN_IF_ERROR(broker_->policies().add(
        policy_spec->get_string("name"), policy_spec->get_string("condition"),
        policy_spec->get_string("decision"),
        static_cast<int>(policy_spec->get_int("priority"))));
  }
  for (const model::ModelObject* symptom_spec :
       middleware_model.children(broker_spec.id(), "symptoms")) {
    Result<broker::Symptom> symptom = decode_symptom(*symptom_spec);
    if (!symptom.ok()) return symptom.status();
    MDSM_RETURN_IF_ERROR(
        broker_->autonomic().add_symptom(std::move(symptom.value())));
  }
  for (const model::ModelObject* plan_spec :
       middleware_model.children(broker_spec.id(), "plans")) {
    Result<broker::ChangePlan> plan =
        decode_change_plan(middleware_model, *plan_spec);
    if (!plan.ok()) return plan.status();
    MDSM_RETURN_IF_ERROR(
        broker_->autonomic().add_plan(std::move(plan.value())));
  }
  for (const model::ModelObject* resource_spec :
       middleware_model.children(broker_spec.id(), "resources")) {
    const std::string resource_name = resource_spec->get_string("name");
    if (!resource_spec->get_bool("optional", false)) {
      required_resources_.push_back(resource_name);
    }
    // Decode the spec's fault-tolerance attributes into an
    // InvocationPolicy. The metamodel defaults describe fire-once with no
    // breaker and no fallback; only specs that deviate get a policy
    // installed, so unconfigured resources keep the zero-overhead path.
    broker::InvocationPolicy policy;
    policy.max_attempts =
        static_cast<int>(resource_spec->get_int("max_attempts", 1));
    policy.initial_backoff = Duration(resource_spec->get_int("backoff_us",
                                                             500));
    policy.max_backoff = Duration(resource_spec->get_int("max_backoff_us",
                                                         50'000));
    policy.attempt_timeout =
        Duration(resource_spec->get_int("attempt_timeout_us", 0));
    policy.fallback_resource = resource_spec->get_string("fallback");
    policy.breaker.window = static_cast<std::size_t>(
        resource_spec->get_int("breaker_window", 0));
    policy.breaker.failure_threshold =
        resource_spec->get_real("breaker_threshold", 0.5);
    policy.breaker.cooldown =
        Duration(resource_spec->get_int("breaker_cooldown_us", 10'000));
    const bool configured = policy.max_attempts != 1 ||
                            policy.attempt_timeout.count() != 0 ||
                            !policy.fallback_resource.empty() ||
                            policy.breaker.enabled();
    if (configured) {
      MDSM_RETURN_IF_ERROR(
          broker_->set_invocation_policy(resource_name, std::move(policy)));
    }
  }
  // The broker keeps the application runtime model (models@runtime).
  broker_->state().set_runtime_model(model::Model("runtime", dsml_));
  return Status::Ok();
}

Status Platform::load_controller_spec(
    const model::Model& middleware_model,
    const model::ModelObject& controller_spec) {
  for (const model::ModelObject* dsc_spec :
       middleware_model.children(controller_spec.id(), "dscs")) {
    controller::Dsc dsc;
    dsc.name = dsc_spec->get_string("name");
    dsc.kind = dsc_spec->get_string("kind", "operation") == "data"
                   ? controller::DscKind::kData
                   : controller::DscKind::kOperation;
    dsc.category = dsc_spec->get_string("category");
    dsc.description = dsc_spec->get_string("description");
    MDSM_RETURN_IF_ERROR(controller_->dscs().add(std::move(dsc)));
  }
  for (const model::ModelObject* procedure_spec :
       middleware_model.children(controller_spec.id(), "procedures")) {
    Result<controller::Procedure> procedure =
        decode_procedure(middleware_model, *procedure_spec);
    if (!procedure.ok()) return procedure.status();
    MDSM_RETURN_IF_ERROR(
        controller_->add_procedure(std::move(procedure.value())));
  }
  for (const model::ModelObject* action_spec :
       middleware_model.children(controller_spec.id(), "actions")) {
    Result<controller::ControllerAction> action =
        decode_controller_action(middleware_model, *action_spec);
    if (!action.ok()) return action.status();
    MDSM_RETURN_IF_ERROR(
        controller_->register_action(std::move(action.value())));
  }
  for (const model::ModelObject* binding_spec :
       middleware_model.children(controller_spec.id(), "bindings")) {
    std::vector<std::string> action_names;
    for (const std::string& target : binding_spec->targets("actions")) {
      const model::ModelObject* action_spec = middleware_model.find(target);
      if (action_spec == nullptr) {
        return ConformanceError("binding '" + binding_spec->id() +
                                "' references missing action '" + target +
                                "'");
      }
      action_names.push_back(action_spec->get_string("name"));
    }
    MDSM_RETURN_IF_ERROR(controller_->bind_action(
        binding_spec->get_string("command"), std::move(action_names)));
  }
  for (const model::ModelObject* mapping_spec :
       middleware_model.children(controller_spec.id(), "mappings")) {
    MDSM_RETURN_IF_ERROR(
        controller_->map_command(mapping_spec->get_string("command"),
                                 mapping_spec->get_string("dsc")));
  }
  for (const model::ModelObject* policy_spec :
       middleware_model.children(controller_spec.id(), "policies")) {
    const std::string role = policy_spec->get_string("role", "classification");
    policy::PolicySet& target = role == "selection"
                                    ? controller_->selection_policies()
                                    : controller_->classification_policies();
    MDSM_RETURN_IF_ERROR(target.add(
        policy_spec->get_string("name"), policy_spec->get_string("condition"),
        policy_spec->get_string("decision"),
        static_cast<int>(policy_spec->get_int("priority"))));
  }
  return Status::Ok();
}

Status Platform::add_resource_adapter(
    std::unique_ptr<broker::ResourceAdapter> adapter) {
  return broker_->resources().add_adapter(std::move(adapter));
}

Status Platform::start() {
  std::lock_guard lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) return Status::Ok();
  for (const std::string& required : required_resources_) {
    if (!broker_->resources().has_adapter(required)) {
      return FailedPrecondition("required resource adapter '" + required +
                                "' is not installed");
    }
  }
  MDSM_RETURN_IF_ERROR(broker_->start());
  MDSM_RETURN_IF_ERROR(controller_->start());
  MDSM_RETURN_IF_ERROR(synthesis_->start());
  running_.store(true, std::memory_order_release);
  log_info("platform") << name_ << " started";
  return Status::Ok();
}

Status Platform::stop() {
  std::lock_guard lock(lifecycle_mutex_);
  // Close the gate first: submissions that re-check running_ after this
  // are rejected; ones already past the check are counted in inflight_.
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::Ok();
  }
  // Drain the async pipeline (queued tasks run to completion — rejected
  // by the gate or finishing normally), then wait out every in-flight
  // submission before stopping the layers under them. Staged requests
  // hold an inflight slot from the door to their terminal continuation,
  // so the wait also covers requests parked on event-loop timers — the
  // threaded loop keeps firing them; a manual loop must be pumped here.
  if (pipeline_ != nullptr) pipeline_->drain();
  if (loop_ != nullptr && !loop_->threaded()) {
    while (true) {
      {
        std::lock_guard inflight(inflight_mutex_);
        if (inflight_ == 0) break;
      }
      loop_->flush();
      if (pipeline_ != nullptr) pipeline_->drain();
      std::this_thread::yield();  // sync submissions drain on their own
    }
  }
  {
    std::unique_lock inflight(inflight_mutex_);
    inflight_cv_.wait(inflight, [this] { return inflight_ == 0; });
  }
  MDSM_RETURN_IF_ERROR(synthesis_->stop());
  MDSM_RETURN_IF_ERROR(controller_->stop());
  MDSM_RETURN_IF_ERROR(broker_->stop());
  return Status::Ok();
}

Result<controller::ControlScript> Platform::submit_model_text(
    std::string_view text, obs::RequestContext& context) {
  Result<model::Model> application_model = model::parse_model(text, dsml_);
  if (!application_model.ok()) return application_model.status();
  return submit_model(std::move(application_model.value()), context);
}

Result<controller::ControlScript> Platform::submit_model_text(
    std::string_view text) {
  last_context_ = std::make_unique<obs::RequestContext>(*clock_, &metrics_);
  return submit_model_text(text, *last_context_);
}

Result<controller::ControlScript> Platform::submit_woven(
    const std::vector<std::string_view>& concern_texts,
    synthesis::WeaveConfig weave_config) {
  std::vector<model::Model> concerns;
  concerns.reserve(concern_texts.size());
  for (std::string_view text : concern_texts) {
    Result<model::Model> parsed = model::parse_model(text, dsml_);
    if (!parsed.ok()) return parsed.status();
    concerns.push_back(std::move(parsed.value()));
  }
  std::vector<const model::Model*> views;
  views.reserve(concerns.size());
  for (const model::Model& concern : concerns) views.push_back(&concern);
  Result<model::Model> woven =
      synthesis::weave(views, std::move(weave_config));
  if (!woven.ok()) return woven.status();
  return submit_model(std::move(woven.value()));
}

Result<controller::ControlScript> Platform::submit_model(
    model::Model application_model, obs::RequestContext& context) {
  // No global submit lock: submissions run concurrently. The only serial
  // section is the synthesis model swap (diff→interpret→commit, under the
  // synthesis engine's mutex); classification, IM generation, and
  // controller/broker execution overlap across requests. The guard
  // registers this submission before the running_ check so stop() either
  // rejects us or waits for us — never tears us mid-pipeline.
  InflightGuard inflight(*this);
  // UI-layer crossing: the root span of the request's trace. The scope
  // makes the context ambient so bus events published anywhere below are
  // stamped with this request's id.
  obs::ContextScope ambient(context);
  obs::ScopedSpan span(context, "ui.submit", application_model.name());
  metrics_.counter("requests.submitted").add();
  auto fail = [this](Status status) -> Result<controller::ControlScript> {
    metrics_.counter("requests.failed").add();
    return status;
  };
  if (!running_.load(std::memory_order_acquire)) {
    return fail(
        FailedPrecondition("platform '" + name_ + "' is not started"));
  }
  // UI-layer admission (PR 5): shed requests whose deadline is already
  // spent or whose remaining budget cannot cover the predicted pipeline
  // latency — before they cost any synthesis work. For async submissions
  // this re-checks the enqueue-time decision after queue delay ate into
  // the budget. Falls through to the plain deadline check when admission
  // is disabled.
  if (Status admitted = admission_.admit(context); !admitted.ok()) {
    return fail(std::move(admitted));
  }
  if (Status deadline = context.check_deadline("ui"); !deadline.ok()) {
    return fail(std::move(deadline));
  }
  Result<controller::ControlScript> script =
      synthesis_->submit_model(std::move(application_model), context);
  // Feed the admission EWMA with the observed end-to-end latency (queue
  // delay included — async contexts are minted at enqueue). Failures
  // consumed pipeline time all the same, so they count too; admission
  // sheds never reach this line.
  admission_.record_latency(context.elapsed());
  if (!script.ok()) return fail(script.status());
  // Overload contract: a success the caller's budget can no longer use
  // is delivered as kTimeout, never as a late Ok. The pre-stage gates
  // make this rare — it fires only when the final pipeline stage itself
  // crossed the deadline.
  if (context.expired()) {
    metrics_.counter("ui.completed_late").add();
    return fail(Timeout(context.tag() + " completed after its deadline"));
  }
  return script;
}

void Platform::ensure_pipeline() {
  std::lock_guard lock(pipeline_mutex_);
  if (pipeline_ != nullptr) return;
  runtime::ExecutorConfig config = pipeline_config_;
  config.thread_count = pipeline_threads_ != 0
                            ? pipeline_threads_
                            : std::thread::hardware_concurrency();
  if (config.thread_count == 0) config.thread_count = 1;
  pipeline_ = std::make_unique<runtime::Executor>(config);
  pipeline_->set_metrics(&metrics_);
  pipeline_->set_clock(clock_);
  if (!staged_) return;
  // The staged core: logical per-stage queues over the shared executor,
  // plus the event loop that parks requests between stages.
  stages_ = std::make_unique<runtime::StagePipeline>(*pipeline_, *clock_,
                                                     &metrics_);
  stage_synthesis_ = stages_->add_stage("synthesis");
  stage_controller_ = stages_->add_stage("controller");
  stage_broker_ = stages_->add_stage("broker");
  stage_complete_ = stages_->add_stage("complete");
  runtime::EventLoopConfig loop_config;
  loop_config.clock = clock_;
  loop_config.threaded = !manual_loop_;
  // An injected virtual clock advances without waking the loop thread;
  // the poll cap bounds how stale a due check can get. 1ms keeps the
  // loop idle-cheap while real-time tests stay responsive.
  loop_config.poll_cap = Duration(1000);
  loop_ = std::make_unique<runtime::EventLoop>(loop_config);
  // Broker invocations park their retries/overruns on the loop and hop
  // back onto workers through the broker stage.
  broker_->resources().set_async_engine(
      loop_.get(), [this](std::function<void()> fn) {
        runtime::StagePipeline::SubmitOptions options;
        options.continuation = true;
        Status submitted =
            stages_->submit(stage_broker_, std::move(fn), options);
        if (!submitted.ok()) {
          log_warn("platform") << "broker continuation dropped: "
                               << submitted.to_string();
        }
      });
}

Status Platform::submit_async(std::string text, SubmitCallback callback,
                              SubmitOptions options) {
  return staged_
             ? submit_async_staged(std::move(text), std::move(callback),
                                   options)
             : submit_async_parked(std::move(text), std::move(callback),
                                   options);
}

Status Platform::submit_async_parked(std::string text,
                                     SubmitCallback callback,
                                     SubmitOptions options) {
  if (!running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("platform '" + name_ + "' is not started");
  }
  ensure_pipeline();
  // The context is minted at enqueue, not at dequeue: queue delay counts
  // against the request's deadline, shows up in its trace as the
  // "runtime.queue" span, and flows into the admission EWMA. shared_ptr
  // because std::function requires a copyable callable.
  auto request = std::make_shared<obs::RequestContext>(*clock_, &metrics_,
                                                       options.deadline);
  if (options.high_priority) request->set_attribute("priority", "high");
  for (auto& [key, value] : options.attributes) {
    request->set_attribute(key, value);
  }
  // Enqueue-time admission: refuse doomed work before it costs a queue
  // slot. submit_model re-checks at dequeue, after queue delay.
  if (Status admitted = admission_.admit(*request); !admitted.ok()) {
    return admitted;
  }
  const std::uint64_t queue_span = request->open_span("runtime.queue");
  runtime::Executor::Task task;
  task.lane = request->high_priority() ? runtime::TaskLane::kHigh
                                       : runtime::TaskLane::kNormal;
  task.run = [this, text = std::move(text), callback, request, queue_span] {
    request->close_span(queue_span);
    Result<controller::ControlScript> outcome =
        submit_model_text(text, *request);
    invoke_callback(callback, std::move(outcome));
  };
  // kShedOldest victims still resolve their callback — exactly once, on
  // the shedding submitter's thread — so every accepted submission
  // reaches its completion.
  task.on_shed = [this, callback, request] {
    invoke_callback(
        callback, Unavailable(request->tag() +
                              " shed from the pipeline queue under overload"));
  };
  return pipeline_->submit(std::move(task));
}

// ---- staged pipeline (PR 6) ------------------------------------------
//
// A request is no longer a worker parked end-to-end: it is a StagedRequest
// hopping synthesis → controller → broker → complete as continuations,
// parking on the event loop whenever the broker backs off or an attempt
// overruns. Ownership discipline: exactly one continuation "holds" the
// request (and may touch its trace) at a time; the deadline watchdog — the
// only concurrent party — flips `resolved` and invokes the callback but
// NEVER touches the trace. The chain observes `resolved` at its next
// touch, closes the spans and releases the inflight slot, so stop() still
// waits out every admitted request and no span is written concurrently.

struct Platform::StagedRequest {
  std::shared_ptr<obs::RequestContext> context;
  std::string text;
  SubmitCallback callback;
  controller::ControlScript script;  ///< commit result, delivered at the end
  std::uint64_t root_span = 0;       ///< "ui.submit", closed by the chain
  std::uint64_t queue_span = 0;      ///< "runtime.queue", closed at stage 1
  std::uint64_t watchdog = 0;        ///< deadline timer id (0 = none)
  std::atomic<bool> resolved{false};
  /// True once real pipeline work began (set just before the synthesis
  /// commit). Only executed requests feed the admission EWMA: a burst of
  /// fast door refusals (admission re-check, deadline check, parse
  /// errors) must not drag the latency prediction down and re-admit
  /// doomed work. Written and read on the chain only.
  bool executed = false;
  std::optional<InflightGuard> inflight;
};

Status Platform::submit_async_staged(std::string text,
                                     SubmitCallback callback,
                                     SubmitOptions options) {
  auto request = std::make_shared<StagedRequest>();
  // The inflight slot registers before the running_ check (same rule as
  // submit_model): stop() either rejects this request or waits for it.
  request->inflight.emplace(*this);
  if (!running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("platform '" + name_ + "' is not started");
  }
  ensure_pipeline();
  request->context = std::make_shared<obs::RequestContext>(*clock_, &metrics_,
                                                           options.deadline);
  if (options.high_priority) {
    request->context->set_attribute("priority", "high");
  }
  for (auto& [key, value] : options.attributes) {
    request->context->set_attribute(key, value);
  }
  // Enqueue-time admission: refuse doomed work before it costs a queue
  // slot. The synthesis stage re-checks after queue delay.
  if (Status admitted = admission_.admit(*request->context); !admitted.ok()) {
    return admitted;
  }
  request->text = std::move(text);
  request->callback = std::move(callback);
  // One root span for the whole staged traversal — every stage, park and
  // resume nests under it, so the trace stays a single tree no matter
  // how many workers the request visits. A request that crossed the wire
  // carries the sender's id as the span detail, keeping remote and local
  // trace trees correlated.
  const std::string_view remote = request->context->remote_id();
  request->root_span = request->context->open_span(
      "ui.submit", remote.empty() ? std::string_view("staged") : remote);
  request->queue_span = request->context->open_span("runtime.queue");
  // Deadline watchdog: a request whose budget expires while parked
  // between stages resolves with kTimeout *when it expires*, not when
  // some stage eventually notices. The loser of the resolved race only
  // counts; the chain does the trace/inflight cleanup at its next touch.
  if (options.deadline.has_value()) {
    request->watchdog = loop_->schedule(
        std::max<Duration>(*options.deadline, Duration(0)), [this, request] {
          if (request->resolved.exchange(true, std::memory_order_acq_rel)) {
            return;
          }
          metrics_.counter("ui.watchdog_timeouts").add();
          metrics_.counter("requests.failed").add();
          invoke_callback(request->callback,
                          Timeout(request->context->tag() +
                                  " deadline expired in the staged pipeline"));
        });
  }
  runtime::StagePipeline::SubmitOptions stage_options;
  stage_options.lane = request->context->high_priority()
                           ? runtime::TaskLane::kHigh
                           : runtime::TaskLane::kNormal;
  // kShedOldest victims resolve their callback exactly once, then the
  // shed handler (chain owner: the request never started) closes out.
  stage_options.on_shed = [this, request] {
    const bool won =
        !request->resolved.exchange(true, std::memory_order_acq_rel);
    request->context->close_span(request->root_span);  // closes queue span
    if (won) {
      if (request->watchdog != 0) loop_->cancel(request->watchdog);
      invoke_callback(request->callback,
                      Unavailable(request->context->tag() +
                                  " shed from the pipeline queue under "
                                  "overload"));
    }
    request->inflight.reset();
  };
  Status submitted = stages_->submit(
      stage_synthesis_, [this, request] { stage_synthesis(request); },
      stage_options);
  if (!submitted.ok()) {
    // Door refusal (kReject/full queue): undo — no callback, the caller
    // gets the status, exactly like the parked path.
    request->context->close_span(request->root_span);
    if (request->watchdog != 0) loop_->cancel(request->watchdog);
    return submitted;
  }
  return Status::Ok();
}

bool Platform::staged_abandoned(const std::shared_ptr<StagedRequest>& request) {
  if (!request->resolved.load(std::memory_order_acquire)) return false;
  // The watchdog already delivered kTimeout; the chain owns the trace,
  // so the close-out happens here, at its next touch.
  if (request->executed) {
    admission_.record_latency(request->context->elapsed());
  }
  request->context->close_span(request->root_span);
  request->inflight.reset();
  return true;
}

void Platform::finish_staged(const std::shared_ptr<StagedRequest>& request,
                             Result<controller::ControlScript> outcome) {
  // Feed the admission EWMA with the observed end-to-end latency (queue
  // and park time included — the context was minted at enqueue), but
  // only for requests that actually ran the pipeline: shed and refused
  // requests resolve in microseconds and would poison the prediction.
  if (request->executed) {
    admission_.record_latency(request->context->elapsed());
  }
  if (!outcome.ok()) metrics_.counter("requests.failed").add();
  const bool won =
      !request->resolved.exchange(true, std::memory_order_acq_rel);
  // Close-through: the root span pops any child spans a timed-out chain
  // left open, keeping the trace a single well-formed tree.
  request->context->close_span(request->root_span);
  {
    std::lock_guard lock(last_async_mutex_);
    last_async_context_ = request->context;
  }
  if (won) {
    if (request->watchdog != 0) loop_->cancel(request->watchdog);
    invoke_callback(request->callback, std::move(outcome));
  }
  request->inflight.reset();
}

void Platform::submit_continuation(
    std::size_t stage, const std::shared_ptr<StagedRequest>& request,
    runtime::Continuation fn) {
  runtime::StagePipeline::SubmitOptions options;
  options.lane = request->context->high_priority() ? runtime::TaskLane::kHigh
                                                   : runtime::TaskLane::kNormal;
  options.continuation = true;  // admitted work is never refused mid-chain
  Status submitted = stages_->submit(stage, std::move(fn), options);
  if (!submitted.ok()) {
    // Only reachable when the executor is shutting down (destructor
    // teardown); the request can never complete, so close it out.
    log_warn("platform") << request->context->tag()
                         << " continuation dropped: " << submitted.to_string();
    finish_staged(request, Unavailable("staged pipeline shut down mid-request"));
  }
}

void Platform::stage_synthesis(std::shared_ptr<StagedRequest> request) {
  request->context->close_span(request->queue_span);
  if (staged_abandoned(request)) return;
  obs::ContextScope ambient(*request->context);
  metrics_.counter("requests.submitted").add();
  if (!running_.load(std::memory_order_acquire)) {
    finish_staged(request, FailedPrecondition("platform '" + name_ +
                                              "' is not started"));
    return;
  }
  // Dequeue-time admission re-check: queue delay ate into the budget.
  if (Status admitted = admission_.admit(*request->context); !admitted.ok()) {
    finish_staged(request, std::move(admitted));
    return;
  }
  if (Status deadline = request->context->check_deadline("ui");
      !deadline.ok()) {
    finish_staged(request, std::move(deadline));
    return;
  }
  Result<model::Model> parsed = model::parse_model(request->text, dsml_);
  if (!parsed.ok()) {
    finish_staged(request, parsed.status());
    return;
  }
  // Commit only — the serial synthesis window releases before controller
  // execution is even scheduled (the commit itself never parks).
  request->executed = true;
  Result<controller::ControlScript> script =
      synthesis_->commit_model(std::move(parsed.value()), *request->context);
  if (!script.ok()) {
    finish_staged(request, script.status());
    return;
  }
  request->script = std::move(script.value());
  if (request->script.empty()) {
    // Nothing to execute (model unchanged): skip straight to completion.
    submit_continuation(stage_complete_, request, [this, request] {
      stage_complete(request, Status::Ok());
    });
    return;
  }
  submit_continuation(stage_controller_, request,
                      [this, request] { stage_controller(request); });
}

void Platform::stage_controller(std::shared_ptr<StagedRequest> request) {
  if (staged_abandoned(request)) return;
  obs::ContextScope ambient(*request->context);
  // The script chain may park in the broker (backoff, attempt overrun);
  // its completion fires on whatever thread settles the last command and
  // hops to the completion stage from there.
  controller_->execute_script_async(
      request->script, *request->context, [this, request](Status executed) {
        submit_continuation(stage_complete_, request,
                            [this, request, executed] {
                              stage_complete(request, executed);
                            });
      });
}

void Platform::stage_complete(std::shared_ptr<StagedRequest> request,
                              Status executed) {
  if (staged_abandoned(request)) return;
  obs::ContextScope ambient(*request->context);
  if (!executed.ok()) {
    finish_staged(request, std::move(executed));
    return;
  }
  // Overload contract (PR 5): a success the caller's budget can no
  // longer use is delivered as kTimeout, never as a late Ok.
  if (request->context->expired()) {
    metrics_.counter("ui.completed_late").add();
    finish_staged(request, Timeout(request->context->tag() +
                                   " completed after its deadline"));
    return;
  }
  finish_staged(request, std::move(request->script));
}

void Platform::invoke_callback(const SubmitCallback& callback,
                               Result<controller::ControlScript> outcome) {
  if (callback == nullptr) return;
  try {
    callback(std::move(outcome));
  } catch (const std::exception& error) {
    metrics_.counter("ui.callback_failures").add();
    log_warn("platform") << "submit_async callback threw: " << error.what();
  } catch (...) {
    metrics_.counter("ui.callback_failures").add();
    log_warn("platform") << "submit_async callback threw a non-exception";
  }
}

Platform::PipelineStats Platform::pipeline_stats() const {
  std::lock_guard lock(pipeline_mutex_);
  PipelineStats stats;
  stats.queue_capacity = pipeline_config_.queue_capacity;
  if (pipeline_ != nullptr) {
    stats.max_pending = pipeline_->max_pending();
    stats.max_bounded_pending = pipeline_->max_bounded_pending();
    stats.rejections = pipeline_->rejections();
    stats.shed = pipeline_->shed_tasks();
  }
  return stats;
}

std::vector<runtime::StagePipeline::StageStats> Platform::stage_stats()
    const {
  std::lock_guard lock(pipeline_mutex_);
  if (stages_ == nullptr) return {};
  return stages_->stats();
}

Result<controller::ControlScript> Platform::submit_model(
    model::Model application_model) {
  last_context_ = std::make_unique<obs::RequestContext>(*clock_, &metrics_);
  return submit_model(std::move(application_model), *last_context_);
}

std::string Platform::runtime_model_text() const {
  return synthesis_->runtime_model_text();
}

// ---- session-state checkpoint / snapshot-restore (PR 10) --------------

namespace {

/// Wire/disk format tag; bumped if the pair layout ever changes.
constexpr std::string_view kCheckpointFormat = "mdsm-session-checkpoint-v1";

/// The checkpoint tree is a list of [key, value] pairs; find `key`.
const model::Value* find_checkpoint_entry(const model::ValueList& entries,
                                          std::string_view key) {
  for (const model::Value& entry : entries) {
    if (!entry.is_list() || entry.as_list().size() != 2) continue;
    const model::ValueList& pair = entry.as_list();
    if (pair[0].is_string() && pair[0].as_string() == key) return &pair[1];
  }
  return nullptr;
}

model::Value make_pair(std::string key, model::Value value) {
  model::ValueList pair;
  pair.push_back(model::Value(std::move(key)));
  pair.push_back(std::move(value));
  return model::Value(std::move(pair));
}

/// Pack a sorted string→Value map as [[key, value], ...]. The input maps
/// are std::map, so the encoding is deterministic — snapshot() texts are
/// byte-comparable.
template <typename Map>
model::Value pack_scalar_map(const Map& map) {
  model::ValueList out;
  out.reserve(map.size());
  for (const auto& [key, value] : map) {
    out.push_back(make_pair(key, value));
  }
  return model::Value(std::move(out));
}

/// Visit a [[key, value], ...] section (absent section = empty).
template <typename Apply>
Status each_checkpoint_pair(const model::Value* section,
                            std::string_view what, Apply&& apply) {
  if (section == nullptr) return Status::Ok();
  if (!section->is_list()) {
    return InvalidArgument("checkpoint section '" + std::string(what) +
                           "' must be a list of [key, value] pairs");
  }
  for (const model::Value& entry : section->as_list()) {
    if (!entry.is_list() || entry.as_list().size() != 2 ||
        !entry.as_list()[0].is_string()) {
      return InvalidArgument("checkpoint section '" + std::string(what) +
                             "' holds a malformed [key, value] pair");
    }
    apply(entry.as_list()[0].as_string(), entry.as_list()[1]);
  }
  return Status::Ok();
}

}  // namespace

Result<model::Value> Platform::export_session_state(
    const std::string& session) {
  // The runtime model and the interpreter's LTS states are captured in
  // ONE hold of the synthesis mutex — mutually consistent even while
  // submissions race. The scalar stores follow as point-in-time copies
  // (each internally synchronized).
  synthesis::SynthesisEngine::ExportedState synth = synthesis_->export_state();
  model::ValueList lts;
  lts.reserve(synth.lts_states.size());
  for (const auto& [object_id, state] : synth.lts_states) {
    lts.push_back(make_pair(object_id, model::Value(state)));
  }
  model::ValueList root;
  root.push_back(make_pair("format", model::Value(std::string(
                                         kCheckpointFormat))));
  root.push_back(make_pair("session", model::Value(session)));
  root.push_back(
      make_pair("runtime_model",
                model::Value(std::move(synth.runtime_model_text))));
  root.push_back(make_pair("lts_states", model::Value(std::move(lts))));
  root.push_back(make_pair(
      "memory", pack_scalar_map(controller_->engine().memory_snapshot())));
  root.push_back(make_pair("context", pack_scalar_map(context_.snapshot())));
  root.push_back(make_pair(
      "broker", pack_scalar_map(broker_->state().variables_snapshot())));
  return model::Value(std::move(root));
}

Status Platform::import_session_state(const model::Value& state) {
  if (!state.is_list()) {
    return InvalidArgument(
        "session checkpoint must be a list of [key, value] pairs");
  }
  const model::ValueList& entries = state.as_list();
  const model::Value* format = find_checkpoint_entry(entries, "format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kCheckpointFormat) {
    return InvalidArgument("unrecognized session-checkpoint format");
  }
  const model::Value* model_text =
      find_checkpoint_entry(entries, "runtime_model");
  if (model_text == nullptr || !model_text->is_string()) {
    return InvalidArgument("session checkpoint carries no runtime model");
  }
  Result<model::Model> checkpointed =
      model::parse_model(model_text->as_string(), dsml_);
  if (!checkpointed.ok()) return checkpointed.status();
  std::map<std::string, std::string, std::less<>> lts_states;
  if (const model::Value* lts = find_checkpoint_entry(entries, "lts_states");
      lts != nullptr) {
    if (!lts->is_list()) {
      return InvalidArgument("checkpoint lts_states must be a list");
    }
    for (const model::Value& entry : lts->as_list()) {
      if (!entry.is_list() || entry.as_list().size() != 2 ||
          !entry.as_list()[0].is_string() ||
          !entry.as_list()[1].is_string()) {
        return InvalidArgument(
            "checkpoint lts_states entries must be [id, state] string "
            "pairs");
      }
      lts_states[entry.as_list()[0].as_string()] =
          entry.as_list()[1].as_string();
    }
  }
  // Adopt model + LTS states first (validates conformance; fires the
  // model listener so the broker's runtime-model mirror converges). On
  // failure nothing below has been touched.
  MDSM_RETURN_IF_ERROR(synthesis_->restore_state(
      std::move(checkpointed.value()), std::move(lts_states)));
  MDSM_RETURN_IF_ERROR(each_checkpoint_pair(
      find_checkpoint_entry(entries, "memory"), "memory",
      [this](const std::string& key, const model::Value& value) {
        controller_->engine().set_memory(key, value);
      }));
  MDSM_RETURN_IF_ERROR(each_checkpoint_pair(
      find_checkpoint_entry(entries, "context"), "context",
      [this](const std::string& key, const model::Value& value) {
        context_.set(key, value);
      }));
  MDSM_RETURN_IF_ERROR(each_checkpoint_pair(
      find_checkpoint_entry(entries, "broker"), "broker",
      [this](const std::string& key, const model::Value& value) {
        broker_->state().set(key, value);
      }));
  metrics_.counter("platform.session_states_imported").add();
  return Status::Ok();
}

Result<std::string> Platform::snapshot() {
  Result<model::Value> exported = export_session_state(name_);
  if (!exported.ok()) return exported.status();
  return exported.value().to_text();
}

Status Platform::restore(std::string_view snapshot_text) {
  Result<model::Value> parsed = model::parse_value(snapshot_text);
  if (!parsed.ok()) return parsed.status();
  return import_session_state(parsed.value());
}

}  // namespace mdsm::core
