// Deadline-aware admission control at the UI layer (PR 5).
//
// Under sustained overload, queue delay silently consumes every
// request's deadline budget: an expired request still marches through
// Synthesis and into the Controller before the per-crossing deadline
// checks finally kill it — all of that work is wasted. Admission control
// sheds such requests at the door instead:
//
//   - a request whose deadline has already passed is shed immediately
//     ("ui.shed_expired");
//   - a request whose remaining budget is smaller than the platform's
//     predicted pipeline latency — an EWMA over recently observed
//     request latencies (queue delay included for async submissions) —
//     is shed as doomed ("ui.shed_predicted").
//
// Every shed publishes a "request.shed" bus event (payload
// ["expired"|"predicted", request tag]) so autonomic symptoms and
// monitors can react to load shedding exactly like any other condition.
// Requests without a deadline are always admitted: with no budget there
// is no basis to predict doom.
#pragma once

#include <atomic>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "runtime/event_bus.hpp"

namespace mdsm::core {

struct AdmissionConfig {
  bool enabled = false;
  /// EWMA weight of the newest latency sample (0 < alpha <= 1).
  double ewma_alpha = 0.2;
  /// Shed when remaining budget < safety_factor * predicted latency.
  double safety_factor = 1.0;
};

class AdmissionController {
 public:
  void configure(AdmissionConfig config) noexcept { config_ = config; }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Wire the platform's metrics registry and event bus. Call once,
  /// before traffic.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_bus(runtime::EventBus* bus) noexcept { bus_ = bus; }

  /// Gate a request at the UI boundary. Ok admits; kTimeout means the
  /// deadline is already spent; kUnavailable means the remaining budget
  /// cannot cover the predicted pipeline latency. Disabled controllers
  /// admit everything.
  [[nodiscard]] Status admit(const obs::RequestContext& context);

  /// Feed one completed request's observed end-to-end pipeline latency
  /// (UI admit → script executed, queue delay included) into the EWMA.
  void record_latency(Duration observed) noexcept;

  /// Current EWMA of pipeline latency; zero until the first sample.
  [[nodiscard]] Duration predicted_latency() const noexcept {
    return Duration(static_cast<Duration::rep>(
        ewma_us_.load(std::memory_order_relaxed)));
  }

 private:
  void publish_shed(const obs::RequestContext& context, const char* reason);

  AdmissionConfig config_;
  std::atomic<double> ewma_us_{0.0};
  std::atomic<bool> seeded_{false};
  obs::Counter* shed_expired_ = nullptr;
  obs::Counter* shed_predicted_ = nullptr;
  runtime::EventBus* bus_ = nullptr;
};

}  // namespace mdsm::core
