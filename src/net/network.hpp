// Simulated network substrate.
//
// The paper's platforms run over real communication services, device
// links and cellular networks; none are available here, so this module
// provides the closest synthetic equivalent: named endpoints exchanging
// messages through a latency/jitter/loss-modeled bus with link failure
// injection and partitions. The broker layers and the split deployments
// (2SVM, CSVM, the PR-7 ingress front-end) run their remote interactions
// over it, exercising the same asynchronous code paths a real network
// would.
//
// Determinism: message delivery order is a function of (virtual) delivery
// time and a monotonically increasing sequence number; jitter and loss
// draw from a seeded RNG. Driving the same scenario twice yields the same
// trace (single-driver scenarios; concurrent senders race for sequence
// numbers, which is the point of using threads).
//
// Thread-safety (PR 5): all Network state — endpoint registry, message
// queue, RNG, link/partition state, stats — is guarded by one internal
// mutex, so endpoints may send from any thread while another drives
// delivery. Handlers are invoked OUTSIDE the lock (a handler may
// reentrantly send, as the ping/pong tests do); set_handler() takes a
// per-endpoint mutex so installing a handler races safely with delivery.
//
// Endpoint lifecycle (PR 7): endpoints are shared-owned. The delivering
// thread pins the destination endpoint for the duration of its handler,
// so remove_endpoint() racing an in-flight delivery defers destruction
// until the delivery settles instead of running the handler against a
// destroyed Endpoint. Messages still queued for a removed endpoint count
// as `undeliverable` at their delivery time. endpoint_handle() hands out
// that shared ownership: a handle outlives removal and even the Network
// itself — the Network detaches every endpoint on destruction, and
// send() on a detached endpoint returns kUnavailable instead of
// dereferencing a dangling Network pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "model/value.hpp"

namespace mdsm::net {

struct Message {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  std::string topic;
  model::Value payload;
};

/// Tuning knobs for the link model.
struct NetworkConfig {
  Duration base_latency = std::chrono::microseconds(500);
  Duration jitter = std::chrono::microseconds(100);  ///< uniform [0, jitter]
  double drop_rate = 0.0;       ///< probability a message is lost
  std::uint32_t seed = 42;      ///< RNG seed for jitter + loss
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       ///< lost to drop_rate
  std::uint64_t blocked = 0;       ///< lost to downed links/partitions
  std::uint64_t undeliverable = 0; ///< no destination/handler at delivery time
};

class Network;

/// A named attachment point. Endpoints are shared-owned by the Network;
/// user code may keep the raw pointer while the Network lives, or take an
/// endpoint_handle() to outlive removal/teardown (sends on a detached
/// endpoint fail with kUnavailable instead of crashing).
class Endpoint {
 public:
  using Handler = std::function<void(const Message&)>;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Install the message handler (replaces any previous one). Safe to
  /// call while the network is delivering: in-flight deliveries finish
  /// against the handler they snapshotted.
  void set_handler(Handler handler) {
    std::lock_guard lock(mutex_);
    handler_ = std::move(handler);
  }

  /// Send via the owning network. After the network detached this
  /// endpoint (remove_endpoint() or Network destruction), returns
  /// kUnavailable — the handle-holding caller learns the endpoint is
  /// gone instead of dereferencing a dangling pointer.
  Status send(const std::string& to, std::string topic,
              model::Value payload = {});

  /// True once the owning network dropped this endpoint.
  [[nodiscard]] bool detached() const noexcept {
    return network_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  friend class Network;
  Endpoint(std::string name, Network& network)
      : name_(std::move(name)), network_(&network) {}

  [[nodiscard]] Handler handler_snapshot() const {
    std::lock_guard lock(mutex_);
    return handler_;
  }

  std::string name_;
  /// The owning network, nulled at detach. A send racing the *detach* is
  /// safe (it observes nullptr or a still-live network); a send racing
  /// actual Network destruction from another thread is a caller ordering
  /// bug, same as any use-after-free of the Network itself.
  std::atomic<Network*> network_;
  mutable std::mutex mutex_;  ///< guards handler_
  Handler handler_;
};

/// The simulated message bus.
class Network {
 public:
  /// The clock is typically a SimClock the test advances; run_until_idle
  /// advances it automatically to each delivery time.
  Network(SimClock& clock, NetworkConfig config = {});
  /// Detaches every endpoint: surviving handles observe kUnavailable on
  /// send instead of touching the destroyed network.
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Result<Endpoint*> create_endpoint(const std::string& name);
  /// Unregister the endpoint. An in-flight delivery pins the endpoint, so
  /// destruction is deferred until the delivery (and any handle) settles;
  /// messages still queued to it count as undeliverable when due.
  Status remove_endpoint(const std::string& name);
  [[nodiscard]] Endpoint* find_endpoint(std::string_view name);
  /// Shared ownership of the endpoint: the handle stays valid after
  /// remove_endpoint() and Network destruction (sends then fail with
  /// kUnavailable). Null when the endpoint does not exist.
  [[nodiscard]] std::shared_ptr<Endpoint> endpoint_handle(
      std::string_view name);

  /// Queue a message for future delivery (applies latency/jitter/loss at
  /// send time, link state at delivery time).
  Status send(const std::string& from, const std::string& to,
              std::string topic, model::Value payload);

  /// Deliver every message due at or before the current virtual time.
  std::size_t deliver_due();

  /// Advance the clock through each pending delivery until no messages
  /// remain (or `max_messages` were delivered). Handlers that reentrantly
  /// send messages due at the current tick are drained in the same pass —
  /// never left behind as "idle" — and count against the cap, so a
  /// same-tick ping/pong loop terminates instead of spinning forever.
  /// Returns count delivered.
  std::size_t run_until_idle(std::size_t max_messages = 100000);

  /// Bidirectional link failure between two endpoints. The pair is
  /// normalized internally, so set_link_down(a, b, …) and
  /// set_link_down(b, a, …) address the same link.
  void set_link_down(const std::string& a, const std::string& b, bool down);

  /// Partition: endpoints in `group` can only reach each other.
  void set_partition(const std::set<std::string>& group);
  void clear_partition();

  /// Consistent snapshot of the delivery counters (by value: the live
  /// struct mutates under the network mutex).
  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] SimClock& clock() noexcept { return *clock_; }

 private:
  struct Pending {
    TimePoint deliver_at;
    std::uint64_t seq;  ///< tie-break for equal delivery times
    Message message;
    friend bool operator>(const Pending& a, const Pending& b) {
      return std::tie(a.deliver_at, a.seq) > std::tie(b.deliver_at, b.seq);
    }
  };

  /// deliver_due with a delivery budget (run_until_idle's termination
  /// guarantee against same-tick reentrant send loops).
  std::size_t deliver_due_bounded(std::size_t budget);

  /// Caller must hold mutex_.
  [[nodiscard]] bool link_up(const std::string& a,
                             const std::string& b) const;
  /// Canonical (ordered) form of an undirected link pair.
  [[nodiscard]] static std::pair<std::string, std::string> link_key(
      const std::string& a, const std::string& b) {
    return a <= b ? std::pair(a, b) : std::pair(b, a);
  }

  /// Guards everything below (lock order: mutex_ before an endpoint's
  /// handler mutex; never the reverse). clock_ has its own internal lock.
  mutable std::mutex mutex_;
  SimClock* clock_;
  NetworkConfig config_;
  std::mt19937 rng_;
  std::map<std::string, std::shared_ptr<Endpoint>, std::less<>> endpoints_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::set<std::pair<std::string, std::string>> down_links_;
  std::optional<std::set<std::string>> partition_;
  NetworkStats stats_;
  std::uint64_t seq_ = 0;
};

}  // namespace mdsm::net
