#include "net/network.hpp"

#include <limits>

#include "common/ids.hpp"
#include "common/log.hpp"

namespace mdsm::net {

Status Endpoint::send(const std::string& to, std::string topic,
                      model::Value payload) {
  // Pin the owner outside any lock: a concurrent detach flips the
  // pointer to null, and we either observe it (refuse) or the still-live
  // network (the detacher has not destroyed it yet at flip time).
  Network* network = network_.load(std::memory_order_acquire);
  if (network == nullptr) {
    return Unavailable("endpoint '" + name_ +
                       "' is detached from its network");
  }
  return network->send(name_, to, std::move(topic), std::move(payload));
}

Network::Network(SimClock& clock, NetworkConfig config)
    : clock_(&clock), config_(config), rng_(config.seed) {}

Network::~Network() {
  std::lock_guard lock(mutex_);
  for (auto& [name, endpoint] : endpoints_) {
    endpoint->network_.store(nullptr, std::memory_order_release);
  }
}

Result<Endpoint*> Network::create_endpoint(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (endpoints_.contains(name)) {
    return AlreadyExists("endpoint '" + name + "' already exists");
  }
  auto endpoint = std::shared_ptr<Endpoint>(new Endpoint(name, *this));
  Endpoint* raw = endpoint.get();
  endpoints_[name] = std::move(endpoint);
  return raw;
}

Status Network::remove_endpoint(const std::string& name) {
  std::shared_ptr<Endpoint> removed;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      return NotFound("endpoint '" + name + "' does not exist");
    }
    removed = std::move(it->second);
    endpoints_.erase(it);
    removed->network_.store(nullptr, std::memory_order_release);
  }
  // `removed` drops its reference outside the lock; an in-flight delivery
  // (or a user handle) still pinning the endpoint defers the destruction
  // until it settles, so handlers never run against a destroyed Endpoint.
  return Status::Ok();
}

Endpoint* Network::find_endpoint(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

std::shared_ptr<Endpoint> Network::endpoint_handle(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status Network::send(const std::string& from, const std::string& to,
                     std::string topic, model::Value payload) {
  std::lock_guard lock(mutex_);
  if (!endpoints_.contains(from)) {
    return NotFound("sender endpoint '" + from + "' does not exist");
  }
  ++stats_.sent;
  // Loss is decided at send time (models the message never making it out).
  if (config_.drop_rate > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) < config_.drop_rate) {
      ++stats_.dropped;
      return Status::Ok();  // silent loss, like a real datagram network
    }
  }
  Duration latency = config_.base_latency;
  if (config_.jitter.count() > 0) {
    std::uniform_int_distribution<std::int64_t> uniform(
        0, config_.jitter.count());
    latency += Duration(uniform(rng_));
  }
  Pending pending;
  pending.deliver_at = clock_->now() + latency;
  pending.seq = ++seq_;
  pending.message.id = next_id();
  pending.message.from = from;
  pending.message.to = to;
  pending.message.topic = std::move(topic);
  pending.message.payload = std::move(payload);
  queue_.push(std::move(pending));
  return Status::Ok();
}

bool Network::link_up(const std::string& a, const std::string& b) const {
  if (down_links_.contains(link_key(a, b))) return false;
  if (partition_.has_value()) {
    bool a_in = partition_->contains(a);
    bool b_in = partition_->contains(b);
    if (a_in != b_in) return false;
  }
  return true;
}

std::size_t Network::deliver_due() {
  return deliver_due_bounded(std::numeric_limits<std::size_t>::max());
}

std::size_t Network::deliver_due_bounded(std::size_t budget) {
  std::size_t delivered = 0;
  while (delivered < budget) {
    Endpoint::Handler handler;
    // Pin the destination for the whole handler call: a concurrent
    // remove_endpoint() defers the Endpoint's destruction until this
    // delivery settles (the handler may reentrantly send through it).
    std::shared_ptr<Endpoint> target;
    Message message;
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty() || queue_.top().deliver_at > clock_->now()) break;
      message = queue_.top().message;
      queue_.pop();
      // Link state is evaluated at delivery time: a link that went down
      // after send still swallows in-flight traffic.
      if (!link_up(message.from, message.to)) {
        ++stats_.blocked;
        continue;
      }
      auto it = endpoints_.find(message.to);
      if (it != endpoints_.end()) {
        target = it->second;
        handler = target->handler_snapshot();
      }
      // A removed endpoint (or one that never installed a handler) makes
      // the queued message undeliverable — counted, not crashed into.
      if (handler == nullptr) {
        ++stats_.undeliverable;
        continue;
      }
      ++stats_.delivered;
    }
    ++delivered;
    // Outside the lock: handlers may reentrantly send (ping/pong) or
    // inspect the network without self-deadlocking.
    handler(message);
  }
  return delivered;
}

std::size_t Network::run_until_idle(std::size_t max_messages) {
  std::size_t total = 0;
  while (total < max_messages) {
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) break;
      clock_->set(queue_.top().deliver_at);
    }
    // Every due message is popped even when blocked/undeliverable, so
    // the queue shrinks and progress is guaranteed. The bounded budget
    // keeps a handler that reentrantly sends due-now messages (same-tick
    // ping/pong) from pinning this pass past the caller's cap.
    std::size_t round = deliver_due_bounded(max_messages - total);
    total += round;
    if (round == 0) {
      // Nothing delivered at this tick (all blocked/undeliverable): loop
      // again — the clock advance above is monotonic, so either the
      // queue drains or time moves forward. No premature idle.
      continue;
    }
  }
  return total;
}

void Network::set_link_down(const std::string& a, const std::string& b,
                            bool down) {
  std::lock_guard lock(mutex_);
  // Normalized storage: (a, b) and (b, a) are the same undirected link.
  if (down) {
    down_links_.insert(link_key(a, b));
  } else {
    down_links_.erase(link_key(a, b));
  }
}

void Network::set_partition(const std::set<std::string>& group) {
  std::lock_guard lock(mutex_);
  partition_ = group;
}

void Network::clear_partition() {
  std::lock_guard lock(mutex_);
  partition_.reset();
}

NetworkStats Network::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t Network::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace mdsm::net
