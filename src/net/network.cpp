#include "net/network.hpp"

#include "common/ids.hpp"
#include "common/log.hpp"

namespace mdsm::net {

Status Endpoint::send(const std::string& to, std::string topic,
                      model::Value payload) {
  return network_->send(name_, to, std::move(topic), std::move(payload));
}

Network::Network(SimClock& clock, NetworkConfig config)
    : clock_(&clock), config_(config), rng_(config.seed) {}

Result<Endpoint*> Network::create_endpoint(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (endpoints_.contains(name)) {
    return AlreadyExists("endpoint '" + name + "' already exists");
  }
  auto endpoint = std::unique_ptr<Endpoint>(new Endpoint(name, *this));
  Endpoint* raw = endpoint.get();
  endpoints_[name] = std::move(endpoint);
  return raw;
}

Status Network::remove_endpoint(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (endpoints_.erase(name) == 0) {
    return NotFound("endpoint '" + name + "' does not exist");
  }
  return Status::Ok();
}

Endpoint* Network::find_endpoint(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

Status Network::send(const std::string& from, const std::string& to,
                     std::string topic, model::Value payload) {
  std::lock_guard lock(mutex_);
  if (!endpoints_.contains(from)) {
    return NotFound("sender endpoint '" + from + "' does not exist");
  }
  ++stats_.sent;
  // Loss is decided at send time (models the message never making it out).
  if (config_.drop_rate > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) < config_.drop_rate) {
      ++stats_.dropped;
      return Status::Ok();  // silent loss, like a real datagram network
    }
  }
  Duration latency = config_.base_latency;
  if (config_.jitter.count() > 0) {
    std::uniform_int_distribution<std::int64_t> uniform(
        0, config_.jitter.count());
    latency += Duration(uniform(rng_));
  }
  Pending pending;
  pending.deliver_at = clock_->now() + latency;
  pending.seq = ++seq_;
  pending.message.id = next_id();
  pending.message.from = from;
  pending.message.to = to;
  pending.message.topic = std::move(topic);
  pending.message.payload = std::move(payload);
  queue_.push(std::move(pending));
  return Status::Ok();
}

bool Network::link_up(const std::string& a, const std::string& b) const {
  if (down_links_.contains({a, b}) || down_links_.contains({b, a})) {
    return false;
  }
  if (partition_.has_value()) {
    bool a_in = partition_->contains(a);
    bool b_in = partition_->contains(b);
    if (a_in != b_in) return false;
  }
  return true;
}

std::size_t Network::deliver_due() {
  std::size_t delivered = 0;
  for (;;) {
    Endpoint::Handler handler;
    Message message;
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty() || queue_.top().deliver_at > clock_->now()) break;
      message = queue_.top().message;
      queue_.pop();
      // Link state is evaluated at delivery time: a link that went down
      // after send still swallows in-flight traffic.
      if (!link_up(message.from, message.to)) {
        ++stats_.blocked;
        continue;
      }
      auto it = endpoints_.find(message.to);
      if (it != endpoints_.end()) handler = it->second->handler_snapshot();
      if (handler == nullptr) {
        ++stats_.undeliverable;
        continue;
      }
      ++stats_.delivered;
    }
    ++delivered;
    // Outside the lock: handlers may reentrantly send (ping/pong) or
    // inspect the network without self-deadlocking.
    handler(message);
  }
  return delivered;
}

std::size_t Network::run_until_idle(std::size_t max_messages) {
  std::size_t total = 0;
  while (total < max_messages) {
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) break;
      clock_->set(queue_.top().deliver_at);
    }
    // Every due message is popped even when blocked/undeliverable, so
    // the queue shrinks and progress is guaranteed.
    total += deliver_due();
  }
  return total;
}

void Network::set_link_down(const std::string& a, const std::string& b,
                            bool down) {
  std::lock_guard lock(mutex_);
  if (down) {
    down_links_.insert({a, b});
  } else {
    down_links_.erase({a, b});
    down_links_.erase({b, a});
  }
}

void Network::set_partition(const std::set<std::string>& group) {
  std::lock_guard lock(mutex_);
  partition_ = group;
}

void Network::clear_partition() {
  std::lock_guard lock(mutex_);
  partition_.reset();
}

NetworkStats Network::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t Network::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace mdsm::net
