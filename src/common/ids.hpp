// Process-wide monotonic id generation. Models, signals, commands, intent
// models, sessions etc. all need cheap unique identities; a single atomic
// counter keeps them globally unique and ordering-friendly in traces.
#pragma once

#include <cstdint>
#include <string>

namespace mdsm {

/// Next process-unique id (starts at 1; 0 means "no id").
std::uint64_t next_id() noexcept;

/// "prefix-<n>" convenience for human-readable trace ids.
std::string next_tagged_id(const std::string& prefix);

}  // namespace mdsm
