// Time sources. The simulated network and domain plants run on a virtual
// clock so integration tests are deterministic and fast; benchmarks use the
// steady clock. Both implement the same interface so components are
// clock-agnostic (Core Guidelines I.25: prefer abstract classes to keep
// options open).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mdsm {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Wall/steady time, for benchmarks and real runs.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    return std::chrono::time_point_cast<Duration>(
        std::chrono::steady_clock::now());
  }
};

/// Manually advanced virtual time, for deterministic tests.
class SimClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    std::lock_guard lock(mutex_);
    return now_;
  }

  /// Move virtual time forward (never backward).
  void advance(Duration delta) {
    std::lock_guard lock(mutex_);
    if (delta.count() > 0) now_ += delta;
  }

  void set(TimePoint t) {
    std::lock_guard lock(mutex_);
    if (t > now_) now_ = t;
  }

 private:
  mutable std::mutex mutex_;
  TimePoint now_{};
};

/// Stopwatch over any Clock; used by benches and adaptation timers.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}
  void reset() { start_ = clock_->now(); }
  [[nodiscard]] Duration elapsed() const { return clock_->now() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }

 private:
  const Clock* clock_;
  TimePoint start_;
};

}  // namespace mdsm
