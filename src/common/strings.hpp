// Small string utilities shared by the textual model/script parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mdsm {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_.-]*
bool is_identifier(std::string_view name) noexcept;

}  // namespace mdsm
