#include "common/ids.hpp"

#include <atomic>

namespace mdsm {

namespace {
std::atomic<std::uint64_t> g_counter{0};
}

std::uint64_t next_id() noexcept { return ++g_counter; }

std::string next_tagged_id(const std::string& prefix) {
  return prefix + "-" + std::to_string(next_id());
}

}  // namespace mdsm
