#include "common/status.hpp"

namespace mdsm {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kConformanceError: return "conformance-error";
    case ErrorCode::kExecutionError: return "execution-error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out{mdsm::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mdsm
