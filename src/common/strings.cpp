#include "common/strings.hpp"

#include <cctype>

namespace mdsm {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  const char c0 = name.front();
  if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_')) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace mdsm
