// Minimal leveled logger. The middleware layers log structural events
// (component instantiation, signal dispatch, autonomic adaptation) at
// kInfo/kDebug; tests silence output by lowering the global level.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mdsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Thread-safe.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line: "[level] [component] message". Thread-safe.
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {

/// RAII line builder: collects streamed parts, emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) log_message(level_, component_, out_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogLine log_debug(std::string_view component) {
  return {LogLevel::kDebug, component};
}
inline detail::LogLine log_info(std::string_view component) {
  return {LogLevel::kInfo, component};
}
inline detail::LogLine log_warn(std::string_view component) {
  return {LogLevel::kWarn, component};
}
inline detail::LogLine log_error(std::string_view component) {
  return {LogLevel::kError, component};
}

}  // namespace mdsm
