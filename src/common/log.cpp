#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace mdsm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%.*s] [%.*s] %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace mdsm
