// Lightweight error-handling vocabulary used across all MD-DSM modules.
//
// Middleware layers communicate failures across component boundaries where
// exceptions would couple unrelated subsystems; following the Core
// Guidelines (E.2, I.10) we use a value-semantic Status/Result pair for
// recoverable errors and reserve exceptions for programming errors.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mdsm {

/// Category of a failure, roughly mirroring the layers where it can arise.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named entity absent from a registry/repository
  kAlreadyExists,     ///< unique-name or unique-id collision
  kFailedPrecondition,///< operation not legal in the current state
  kUnavailable,       ///< resource/service (possibly transiently) down
  kTimeout,           ///< deadline exceeded
  kParseError,        ///< textual model/script could not be parsed
  kConformanceError,  ///< model does not conform to its metamodel
  kExecutionError,    ///< EU / action raised a runtime fault
  kInternal,          ///< invariant violation inside the platform
};

/// Human-readable name for an ErrorCode ("ok", "not-found", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>" — for logs and test diagnostics.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status Timeout(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Status ParseError(std::string msg) {
  return {ErrorCode::kParseError, std::move(msg)};
}
inline Status ConformanceError(std::string msg) {
  return {ErrorCode::kConformanceError, std::move(msg)};
}
inline Status ExecutionError(std::string msg) {
  return {ErrorCode::kExecutionError, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Thrown only by Result<T>::value() on misuse (programming error).
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::logic_error("Result accessed without value: " +
                         status.to_string()) {}
};

/// A value of type T or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, like
  // absl::StatusOr, so `return value;` and `return ErrStatus;` both work.
  Result(T value) : rep_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status{ErrorCode::kInternal, "ok Status used as error Result"};
    }
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk{};
    return ok() ? kOk : std::get<Status>(rep_);
  }

  [[nodiscard]] T& value() & {
    ensure();
    return std::get<T>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    ensure();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    ensure();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  void ensure() const {
    if (!ok()) throw BadResultAccess(std::get<Status>(rep_));
  }
  std::variant<T, Status> rep_;
};

/// Propagate an error Status from an expression that yields Status.
#define MDSM_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::mdsm::Status mdsm_status_ = (expr);             \
    if (!mdsm_status_.ok()) return mdsm_status_;      \
  } while (false)

}  // namespace mdsm
