// The component factory of the generic runtime environment (paper §V-A):
// "generates each middleware component based on code templates that are
// parameterized with metadata from the middleware model."
//
// A code template here is a registered builder keyed by template name; the
// factory looks up the template named by a middleware-model object and
// passes that object (its metadata) to the builder.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/model.hpp"
#include "runtime/component.hpp"

namespace mdsm::runtime {

class ComponentFactory {
 public:
  /// A code template: builds a component from the model object that
  /// describes it (and the whole middleware model for cross-lookups).
  using Builder = std::function<Result<std::unique_ptr<Component>>(
      const model::ModelObject& spec, const model::Model& middleware_model)>;

  /// Register a template under a unique name.
  Status register_template(const std::string& template_name, Builder builder);

  [[nodiscard]] bool has_template(std::string_view template_name) const;

  /// All registered template names, sorted.
  [[nodiscard]] std::vector<std::string> template_names() const;

  /// Instantiate the component described by `spec`. The template name is
  /// taken from spec's "template" attribute, falling back to its
  /// metaclass name — so a model can either name a template explicitly
  /// or rely on the class↔template convention.
  Result<std::unique_ptr<Component>> instantiate(
      const model::ModelObject& spec, const model::Model& middleware_model);

 private:
  std::map<std::string, Builder, std::less<>> templates_;
};

}  // namespace mdsm::runtime
