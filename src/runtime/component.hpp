// Component base for everything the component factory instantiates from a
// middleware model: managers, handlers, brokers, adapters. Components have
// a start/stop lifecycle so an assembled platform can be brought up and
// torn down in model-defined order.
#pragma once

#include <string>

#include "common/status.hpp"

namespace mdsm::runtime {

enum class ComponentState { kCreated, kStarted, kStopped };

std::string_view to_string(ComponentState state) noexcept;

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ComponentState state() const noexcept { return state_; }

  /// Idempotent lifecycle: start() after start() is a no-op success.
  [[nodiscard]] Status start() {
    if (state_ == ComponentState::kStarted) return Status::Ok();
    MDSM_RETURN_IF_ERROR(on_start());
    state_ = ComponentState::kStarted;
    return Status::Ok();
  }

  [[nodiscard]] Status stop() {
    if (state_ != ComponentState::kStarted) return Status::Ok();
    MDSM_RETURN_IF_ERROR(on_stop());
    state_ = ComponentState::kStopped;
    return Status::Ok();
  }

 protected:
  /// Subclass hooks; default to success so trivial components need no code.
  virtual Status on_start() { return Status::Ok(); }
  virtual Status on_stop() { return Status::Ok(); }

 private:
  std::string name_;
  ComponentState state_ = ComponentState::kCreated;
};

}  // namespace mdsm::runtime
