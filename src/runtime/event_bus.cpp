#include "runtime/event_bus.hpp"

#include <algorithm>

#include "obs/request_context.hpp"

namespace mdsm::runtime {

std::uint64_t EventBus::subscribe(std::string topic, Handler handler) {
  std::lock_guard lock(mutex_);
  std::uint64_t id = next_id();
  bool wildcard = topic == "*" || (topic.size() >= 2 &&
                                   topic.compare(topic.size() - 2, 2, ".*") ==
                                       0);
  subscriptions_.push_back(
      {id, std::move(topic), wildcard, std::move(handler)});
  return id;
}

void EventBus::unsubscribe(std::uint64_t subscription_id) {
  std::lock_guard lock(mutex_);
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [subscription_id](const Subscription& sub) {
                       return sub.id == subscription_id;
                     }),
      subscriptions_.end());
}

bool EventBus::matches(const Subscription& sub, std::string_view topic) {
  if (!sub.wildcard) return sub.topic == topic;
  if (sub.topic == "*") return true;
  // "a.b.*" matches "a.b.c" and "a.b" itself. Checked allocation-free:
  // this runs once per subscriber on every publish.
  std::string_view prefix(sub.topic);
  prefix.remove_suffix(2);  // drop ".*"
  if (topic.size() <= prefix.size()) return topic == prefix;
  return topic[prefix.size()] == '.' &&
         topic.substr(0, prefix.size()) == prefix;
}

std::size_t EventBus::publish(Event event) {
  event.id = next_id();
  if (event.request_id == 0) {
    if (const obs::RequestContext* context = obs::current()) {
      event.request_id = context->id();
    }
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Handler> targets;
  {
    std::lock_guard lock(mutex_);
    for (const Subscription& sub : subscriptions_) {
      if (matches(sub, event.topic)) targets.push_back(sub.handler);
    }
  }
  // Dispatch outside the lock so handlers may (un)subscribe or publish.
  for (const Handler& handler : targets) handler(event);
  return targets.size();
}

std::size_t EventBus::publish(std::string topic, std::string source,
                              model::Value payload) {
  Event event;
  event.topic = std::move(topic);
  event.source = std::move(source);
  event.payload = std::move(payload);
  return publish(std::move(event));
}

std::size_t EventBus::subscription_count() const {
  std::lock_guard lock(mutex_);
  return subscriptions_.size();
}

}  // namespace mdsm::runtime
