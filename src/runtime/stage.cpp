#include "runtime/stage.hpp"

#include <utility>

namespace mdsm::runtime {

namespace {

/// Atomic running-max (CAS loop; concurrent writers never regress it).
template <typename T>
void raise_max(std::atomic<T>& cell, T candidate) {
  T seen = cell.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !cell.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

StagePipeline::StagePipeline(Executor& executor, const Clock& clock,
                             obs::MetricsRegistry* metrics)
    : executor_(&executor), clock_(&clock), metrics_(metrics) {}

std::size_t StagePipeline::add_stage(std::string name) {
  auto stage = std::make_unique<Stage>();
  stage->name = std::move(name);
  if (metrics_ != nullptr) {
    stage->delay = &metrics_->histogram("stage." + stage->name + ".delay_us");
    stage->entered_counter =
        &metrics_->counter("stage." + stage->name + ".entered");
  }
  stages_.push_back(std::move(stage));
  return stages_.size() - 1;
}

Status StagePipeline::submit(std::size_t stage_index, Continuation fn,
                             SubmitOptions options) {
  if (stage_index >= stages_.size()) {
    return InvalidArgument("no stage " + std::to_string(stage_index));
  }
  Stage* stage = stages_[stage_index].get();
  const TimePoint enqueued = clock_->now();
  Executor::Task task;
  task.lane = options.lane;
  task.continuation = options.continuation;
  task.run = [this, stage, enqueued, fn = std::move(fn)] {
    stage->depth.fetch_sub(1, std::memory_order_relaxed);
    if (stage->delay != nullptr) {
      stage->delay->record(clock_->now() - enqueued);
    }
    fn();
  };
  task.on_shed = [stage, on_shed = std::move(options.on_shed)] {
    stage->depth.fetch_sub(1, std::memory_order_relaxed);
    stage->shed.fetch_add(1, std::memory_order_relaxed);
    if (on_shed != nullptr) on_shed();
  };
  // Count the submission as queued before handing it to the executor:
  // a worker could start it (and decrement) before submit() returns.
  const std::size_t depth =
      stage->depth.fetch_add(1, std::memory_order_relaxed) + 1;
  raise_max(stage->max_depth, depth);
  Status accepted = executor_->submit(std::move(task));
  if (!accepted.ok()) {
    // Refused at the executor door (kReject / shutdown): the task never
    // queued, so undo the gauge.
    stage->depth.fetch_sub(1, std::memory_order_relaxed);
    return accepted;
  }
  stage->entered.fetch_add(1, std::memory_order_relaxed);
  if (stage->entered_counter != nullptr) stage->entered_counter->add();
  return accepted;
}

std::vector<StagePipeline::StageStats> StagePipeline::stats() const {
  std::vector<StageStats> out;
  out.reserve(stages_.size());
  for (const auto& stage : stages_) {
    StageStats row;
    row.name = stage->name;
    row.depth = stage->depth.load(std::memory_order_relaxed);
    row.max_depth = stage->max_depth.load(std::memory_order_relaxed);
    row.entered = stage->entered.load(std::memory_order_relaxed);
    row.shed = stage->shed.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

std::size_t StagePipeline::depth(std::size_t stage) const {
  if (stage >= stages_.size()) return 0;
  return stages_[stage]->depth.load(std::memory_order_relaxed);
}

}  // namespace mdsm::runtime
