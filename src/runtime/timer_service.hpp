// Deadline timers over an abstract Clock. Deterministic by construction:
// timers fire only when run_due() is called (the platform's event loop or
// the simulated network's scheduler drives it), never from a hidden
// background thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace mdsm::runtime {

class TimerService {
 public:
  using Callback = std::function<void()>;

  explicit TimerService(const Clock& clock) : clock_(&clock) {}

  /// Schedule `callback` to fire once `delay` from now. Returns timer id.
  std::uint64_t schedule(Duration delay, Callback callback);

  /// Cancel; returns false if already fired or unknown. O(log n) via the
  /// id index (was a linear scan over every pending timer).
  bool cancel(std::uint64_t timer_id);

  /// Fire every timer whose deadline is <= now, in deadline order.
  /// Returns the number fired. The due set is snapshotted at entry:
  /// timers scheduled by callbacks during the drain — even zero-delay
  /// ones — are deferred to the *next* run_due() call, never fired in
  /// this one and never skipped or double-fired. (Firing them in the
  /// same call made a tick's work depend on callback scheduling order;
  /// timer-driven retry backoff needs "one tick = the timers that were
  /// due when the tick started".) Callbacks may cancel not-yet-fired due
  /// timers; cancelled ones are skipped. A throwing callback loses only
  /// its own timer: the exception is contained (counted in
  /// callback_failures()) and the drain continues — one bad timer must
  /// not wedge every deadline scheduled behind it.
  std::size_t run_due();

  /// Retire and return the earliest timer due at `now`, or nullopt when
  /// none is due. Building block for event loops that interleave their
  /// own locking with timer pops (the callback runs outside any lock).
  std::optional<Callback> take_due(TimePoint now);

  /// Retire and return the earliest pending timer regardless of its
  /// deadline, or nullopt when none is pending. Shutdown flushes use
  /// this to run out parked continuations instead of leaking them.
  std::optional<Callback> take_earliest();

  /// Deadline of the earliest pending timer, or nullopt.
  [[nodiscard]] std::optional<TimePoint> next_deadline() const;

  /// Number of pending timers with deadline <= `now` (the prefix a
  /// snapshot-bounded drain would fire).
  [[nodiscard]] std::size_t due_count(TimePoint now) const;

  [[nodiscard]] std::size_t pending() const noexcept { return timers_.size(); }
  /// Callbacks whose exceptions run_due() swallowed.
  [[nodiscard]] std::uint64_t callback_failures() const noexcept {
    return callback_failures_;
  }

 private:
  struct Entry {
    std::uint64_t id;
    Callback callback;
  };

  const Clock* clock_;
  std::multimap<TimePoint, Entry> timers_;
  /// id → position in `timers_`, kept in lockstep for O(log n) cancel.
  std::map<std::uint64_t, std::multimap<TimePoint, Entry>::iterator> index_;
  std::uint64_t callback_failures_ = 0;
};

}  // namespace mdsm::runtime
