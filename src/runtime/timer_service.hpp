// Deadline timers over an abstract Clock. Deterministic by construction:
// timers fire only when run_due() is called (the platform's event loop or
// the simulated network's scheduler drives it), never from a hidden
// background thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace mdsm::runtime {

class TimerService {
 public:
  using Callback = std::function<void()>;

  explicit TimerService(const Clock& clock) : clock_(&clock) {}

  /// Schedule `callback` to fire once `delay` from now. Returns timer id.
  std::uint64_t schedule(Duration delay, Callback callback);

  /// Cancel; returns false if already fired or unknown. O(log n) via the
  /// id index (was a linear scan over every pending timer).
  bool cancel(std::uint64_t timer_id);

  /// Fire every timer whose deadline is <= now, in deadline order.
  /// Returns the number fired. Callbacks may schedule further timers.
  /// A throwing callback loses only its own timer: the exception is
  /// contained (counted in callback_failures()) and the drain continues —
  /// one bad timer must not wedge every deadline scheduled behind it.
  std::size_t run_due();

  /// Deadline of the earliest pending timer, or nullopt.
  [[nodiscard]] std::optional<TimePoint> next_deadline() const;

  [[nodiscard]] std::size_t pending() const noexcept { return timers_.size(); }
  /// Callbacks whose exceptions run_due() swallowed.
  [[nodiscard]] std::uint64_t callback_failures() const noexcept {
    return callback_failures_;
  }

 private:
  struct Entry {
    std::uint64_t id;
    Callback callback;
  };

  const Clock* clock_;
  std::multimap<TimePoint, Entry> timers_;
  /// id → position in `timers_`, kept in lockstep for O(log n) cancel.
  std::map<std::uint64_t, std::multimap<TimePoint, Entry>::iterator> index_;
  std::uint64_t callback_failures_ = 0;
};

}  // namespace mdsm::runtime
