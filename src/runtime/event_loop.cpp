#include "runtime/event_loop.hpp"

#include <utility>
#include <vector>

#include "common/log.hpp"

namespace mdsm::runtime {

namespace {

const Clock& process_steady_clock() noexcept {
  static const SteadyClock clock;
  return clock;
}

}  // namespace

EventLoop::EventLoop(EventLoopConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &process_steady_clock()),
      timers_(*clock_) {
  if (config_.threaded) {
    thread_ = std::thread([this] { run(); });
  }
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::post(std::function<void()> fn) {
  if (fn == nullptr) return;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    posted_.push_back(std::move(fn));
  }
  wake_.notify_one();
}

std::uint64_t EventLoop::schedule(Duration delay, std::function<void()> fn) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return 0;
    id = timers_.schedule(delay, std::move(fn));
  }
  // The new deadline may be nearer than what the loop thread is waiting
  // for; wake it to recompute.
  wake_.notify_one();
  return id;
}

bool EventLoop::cancel(std::uint64_t timer_id) {
  std::lock_guard lock(mutex_);
  return timers_.cancel(timer_id);
}

void EventLoop::run_contained(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    log_error("event-loop") << "callback threw: " << e.what();
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    log_error("event-loop") << "callback threw a non-std::exception";
  }
}

void EventLoop::run() {
  std::unique_lock lock(mutex_);
  while (true) {
    // Drain everything currently runnable. Posts before timers: a post
    // is "as soon as possible" work, a timer merely became eligible.
    bool ran = true;
    while (ran) {
      ran = false;
      if (!posted_.empty()) {
        std::function<void()> fn = std::move(posted_.front());
        posted_.pop_front();
        lock.unlock();
        run_contained(fn);
        lock.lock();
        ran = true;
        continue;
      }
      if (std::optional<TimerService::Callback> due =
              timers_.take_due(clock_->now())) {
        lock.unlock();
        run_contained(*due);
        lock.lock();
        ran = true;
      }
    }
    if (stop_) return;
    if (std::optional<TimePoint> next = timers_.next_deadline()) {
      Duration wait = *next - clock_->now();
      if (config_.poll_cap.count() > 0 && wait > config_.poll_cap) {
        // Virtual clocks advance silently; re-check at the cap.
        wait = config_.poll_cap;
      }
      if (wait.count() > 0) wake_.wait_for(lock, wait);
    } else {
      // Nothing pending: only post()/schedule()/stop() can create work,
      // and all three notify.
      wake_.wait(lock, [this] {
        return stop_ || !posted_.empty() || timers_.pending() != 0;
      });
    }
  }
}

std::size_t EventLoop::poll() {
  std::size_t ran = 0;
  std::unique_lock lock(mutex_);
  // Bound both drains by what existed at entry: work created by the
  // closures we run belongs to the next poll.
  std::size_t post_budget = posted_.size();
  const TimePoint now = clock_->now();
  // Exact due-prefix count: zero-delay timers scheduled by the closures
  // we run land past the budget (equal deadlines insert at the upper
  // bound), so they wait for the next poll.
  std::size_t timer_budget = timers_.due_count(now);
  while (post_budget > 0 && !posted_.empty()) {
    --post_budget;
    std::function<void()> fn = std::move(posted_.front());
    posted_.pop_front();
    lock.unlock();
    run_contained(fn);
    lock.lock();
    ++ran;
  }
  while (timer_budget > 0) {
    --timer_budget;
    std::optional<TimerService::Callback> due = timers_.take_due(now);
    if (!due.has_value()) break;
    lock.unlock();
    run_contained(*due);
    lock.lock();
    ++ran;
  }
  return ran;
}

std::size_t EventLoop::flush() {
  std::size_t ran = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    if (!posted_.empty()) {
      std::function<void()> fn = std::move(posted_.front());
      posted_.pop_front();
      lock.unlock();
      run_contained(fn);
      lock.lock();
      ++ran;
      continue;
    }
    std::optional<TimerService::Callback> next = timers_.take_earliest();
    if (!next.has_value()) break;
    lock.unlock();
    run_contained(*next);
    lock.lock();
    ++ran;
  }
  return ran;
}

void EventLoop::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      // Already stopping; fall through to the join (idempotent, and a
      // second caller must not return before the thread is gone).
    }
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t EventLoop::pending_timers() const {
  std::lock_guard lock(mutex_);
  return timers_.pending();
}

std::size_t EventLoop::pending_posts() const {
  std::lock_guard lock(mutex_);
  return posted_.size();
}

std::uint64_t EventLoop::callback_failures() const {
  return failures_.load(std::memory_order_relaxed);
}

}  // namespace mdsm::runtime
