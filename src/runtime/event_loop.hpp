// The event-driven core of the request pipeline (PR 6). An EventLoop
// owns a TimerService behind a mutex and runs posted closures and due
// timer callbacks — on its own thread in threaded mode, or whenever the
// owner pumps poll() in manual mode (deterministic tests drive a
// SimClock and poll after each advance; nothing ever fires from a
// hidden thread they didn't ask for).
//
// The loop is what lets a parked request consume *no* thread: retry
// backoff, attempt-timeout reclassification and deadline watchdogs are
// all schedule()d here, and their callbacks hand continuations back to
// the stage executor. Callbacks run outside the loop lock, so they may
// freely post(), schedule() and cancel() — including from other loop
// callbacks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "common/clock.hpp"
#include "runtime/timer_service.hpp"

namespace mdsm::runtime {

struct EventLoopConfig {
  /// Time source for timer deadlines (null = process steady clock).
  /// Injected SimClocks advance without notifying the loop, so pair a
  /// virtual clock with a poll_cap (threaded mode) or manual pumping.
  const Clock* clock = nullptr;
  /// true: a dedicated loop thread drains posts and timers as they come
  /// due. false: nothing runs until the owner calls poll()/flush().
  bool threaded = true;
  /// Threaded mode only: upper bound on how long the loop thread waits
  /// between deadline re-checks while timers are pending. Required when
  /// the injected clock is virtual (its advance is invisible to the
  /// condition variable); 0 = wait the full real-time delta.
  Duration poll_cap{0};
};

class EventLoop {
 public:
  explicit EventLoop(EventLoopConfig config = {});
  ~EventLoop();  // stop()s; pending timers and posts are dropped

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Run `fn` on the loop as soon as possible. Safe from any thread and
  /// from inside loop callbacks. After stop() the closure is silently
  /// dropped (shutdown-race posts have nowhere to run).
  void post(std::function<void()> fn);

  /// Run `fn` on the loop once `delay` has elapsed on the loop's clock.
  /// Returns a timer id for cancel(). Safe from any thread.
  std::uint64_t schedule(Duration delay, std::function<void()> fn);

  /// Cancel a scheduled timer; false if it already fired or is unknown.
  bool cancel(std::uint64_t timer_id);

  /// Manual pump: run every post and every timer due *at entry* once,
  /// then return the number of closures run. Timers scheduled during the
  /// pump defer to the next poll (same tick discipline as
  /// TimerService::run_due), so a SimClock test sees exactly one round
  /// of work per advance+poll.
  std::size_t poll();

  /// Shutdown drain: run posts and fire every pending timer immediately,
  /// deadline or not, until the loop is quiescent. Parked continuations
  /// get to run out (and typically fail their deadline gates downstream)
  /// instead of leaking. Returns the number of closures run.
  std::size_t flush();

  /// Stop and join the loop thread (threaded mode). Closures still
  /// pending afterwards are dropped; call flush() first for an orderly
  /// drain. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool threaded() const noexcept { return config_.threaded; }
  [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] std::size_t pending_timers() const;
  [[nodiscard]] std::size_t pending_posts() const;
  /// Closures whose exceptions the loop contained (counted, logged,
  /// never propagated — a bad callback must not kill the loop thread).
  [[nodiscard]] std::uint64_t callback_failures() const;

 private:
  void run();  ///< threaded-mode loop body
  /// Run one closure outside the lock with exception containment.
  void run_contained(const std::function<void()>& fn);

  EventLoopConfig config_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> posted_;
  TimerService timers_;  ///< guarded by mutex_ (TimerService itself is not
                         ///< thread-safe); callbacks run unlocked
  std::atomic<std::uint64_t> failures_{0};
  bool stop_ = false;
  std::thread thread_;  ///< joined by stop()
};

}  // namespace mdsm::runtime
