#include "runtime/executor.hpp"

#include "common/log.hpp"

namespace mdsm::runtime {

namespace {

/// Decrements the owning executor's active count on scope exit — also
/// when the task throws — so drain() can never hang on a failed task.
class ActiveGuard {
 public:
  ActiveGuard(std::mutex& mutex, std::condition_variable& idle,
              const std::deque<std::function<void()>>& queue,
              unsigned& active) noexcept
      : mutex_(mutex), idle_(idle), queue_(queue), active_(active) {}

  ActiveGuard(const ActiveGuard&) = delete;
  ActiveGuard& operator=(const ActiveGuard&) = delete;

  ~ActiveGuard() {
    std::lock_guard lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }

 private:
  std::mutex& mutex_;
  std::condition_variable& idle_;
  const std::deque<std::function<void()>>& queue_;
  unsigned& active_;
};

}  // namespace

Executor::Executor(unsigned thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Executor::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void Executor::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t Executor::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Executor::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    ActiveGuard guard(mutex_, idle_, queue_, active_);
    try {
      task();
    } catch (const std::exception& e) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
      if (failures_counter_ != nullptr) failures_counter_->add();
      log_error("executor") << "task threw: " << e.what();
    } catch (...) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
      if (failures_counter_ != nullptr) failures_counter_->add();
      log_error("executor") << "task threw a non-std::exception";
    }
  }
}

}  // namespace mdsm::runtime
