#include "runtime/executor.hpp"

#include "common/log.hpp"

namespace mdsm::runtime {

namespace {

/// Set while a worker of a given executor runs tasks: lets submit()
/// recognize self-submission and bypass the capacity bound (a worker
/// blocked — or rejected — on its own executor's full queue could never
/// make progress again).
thread_local const Executor* g_worker_of = nullptr;

const Clock& process_clock() noexcept {
  static const SteadyClock clock;
  return clock;
}

}  // namespace

Executor::Executor(unsigned thread_count)
    : Executor(ExecutorConfig{.thread_count = thread_count}) {}

Executor::Executor(ExecutorConfig config)
    : config_(config), clock_(&process_clock()) {
  if (config_.thread_count == 0) config_.thread_count = 1;
  workers_.reserve(config_.thread_count);
  for (unsigned i = 0; i < config_.thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() { shutdown(); }

void Executor::shutdown() {
  bool join_here = false;
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  wake_.notify_all();
  space_.notify_all();  // blocked submitters resolve to rejection
  if (join_here) {
    for (auto& worker : workers_) worker.join();
  }
}

Status Executor::reject(const char* why) {
  rejections_.fetch_add(1, std::memory_order_relaxed);
  if (rejections_counter_ != nullptr) rejections_counter_->add();
  return Unavailable(std::string("executor refused task: ") + why);
}

Status Executor::submit(std::function<void()> task) {
  return submit(Task{.run = std::move(task)});
}

Status Executor::submit(Task task) {
  Queued queued;
  queued.run = std::move(task.run);
  queued.on_shed = std::move(task.on_shed);
  std::function<void()> shed_victim;
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) return reject("shutdown in progress");
    // The capacity bound governs the entry backlog only: continuation
    // hops carry already-admitted requests, so they neither count toward
    // the bound nor crowd fresh entries out of it.
    const bool bounded = config_.queue_capacity != 0 &&
                         g_worker_of != this && !task.continuation;
    if (bounded && bounded_pending_ >= config_.queue_capacity) {
      switch (config_.overflow_policy) {
        case OverflowPolicy::kReject:
          return reject("queue at capacity");
        case OverflowPolicy::kBlock: {
          ++blocked_submitters_;
          space_.wait(lock, [this] {
            return shutting_down_ ||
                   bounded_pending_ < config_.queue_capacity;
          });
          --blocked_submitters_;
          if (shutting_down_) {
            if (blocked_submitters_ == 0) idle_.notify_all();
            return reject("shutdown in progress");
          }
          break;
        }
        case OverflowPolicy::kShedOldest: {
          // Prefer shedding bulk work; only eat into the high lane when
          // no normal-lane entry is queued. Continuations are never
          // victims — shedding one would strand an admitted request
          // whose completion callback must still fire — and since
          // bounded_pending_ >= capacity >= 1, a sheddable entry is
          // guaranteed to exist.
          auto shed_from = [this, &shed_victim](std::deque<Queued>& lane) {
            for (auto it = lane.begin(); it != lane.end(); ++it) {
              if (it->continuation) continue;
              shed_victim = std::move(it->on_shed);
              lane.erase(it);
              --bounded_pending_;
              return true;
            }
            return false;
          };
          if (!shed_from(queues_[0])) shed_from(queues_[1]);
          shed_.fetch_add(1, std::memory_order_relaxed);
          if (shed_counter_ != nullptr) shed_counter_->add();
          break;
        }
      }
    }
    queued.enqueued_at = clock_->now();
    queued.continuation = task.continuation;
    queues_[static_cast<int>(task.lane)].push_back(std::move(queued));
    std::size_t depth = queued_unlocked();
    std::size_t seen = max_pending_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_pending_.compare_exchange_weak(seen, depth,
                                               std::memory_order_relaxed)) {
    }
    if (!task.continuation) {
      ++bounded_pending_;
      std::size_t bounded_seen =
          max_bounded_pending_.load(std::memory_order_relaxed);
      while (bounded_pending_ > bounded_seen &&
             !max_bounded_pending_.compare_exchange_weak(
                 bounded_seen, bounded_pending_,
                 std::memory_order_relaxed)) {
      }
    }
  }
  wake_.notify_one();
  if (shed_victim != nullptr) {
    try {
      shed_victim();
    } catch (const std::exception& e) {
      log_error("executor") << "on_shed threw: " << e.what();
    } catch (...) {
      log_error("executor") << "on_shed threw a non-std::exception";
    }
  }
  return Status::Ok();
}

void Executor::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] {
    return queued_unlocked() == 0 && active_ == 0 &&
           blocked_submitters_ == 0;
  });
}

std::size_t Executor::pending() const {
  std::lock_guard lock(mutex_);
  return queued_unlocked();
}

void Executor::worker_loop() {
  g_worker_of = this;
  // Decrements active_ on scope exit — also when the task throws — so
  // drain() can never hang on a failed task.
  class ActiveGuard {
   public:
    explicit ActiveGuard(Executor& owner) noexcept : owner_(owner) {}
    ActiveGuard(const ActiveGuard&) = delete;
    ActiveGuard& operator=(const ActiveGuard&) = delete;
    ~ActiveGuard() {
      std::lock_guard lock(owner_.mutex_);
      --owner_.active_;
      if (owner_.queued_unlocked() == 0 && owner_.active_ == 0 &&
          owner_.blocked_submitters_ == 0) {
        owner_.idle_.notify_all();
      }
    }

   private:
    Executor& owner_;
  };

  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] {
        return shutting_down_ || queued_unlocked() != 0;
      });
      if (shutting_down_ && queued_unlocked() == 0) return;
      auto& lane = !queues_[1].empty() ? queues_[1] : queues_[0];
      Queued next = std::move(lane.front());
      lane.pop_front();
      if (!next.continuation) --bounded_pending_;
      ++active_;
      if (queue_delay_histogram_ != nullptr) {
        queue_delay_histogram_->record(clock_->now() - next.enqueued_at);
      }
      task = std::move(next.run);
      space_.notify_one();
    }
    ActiveGuard guard(*this);
    try {
      task();
    } catch (const std::exception& e) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
      if (failures_counter_ != nullptr) failures_counter_->add();
      log_error("executor") << "task threw: " << e.what();
    } catch (...) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
      if (failures_counter_ != nullptr) failures_counter_->add();
      log_error("executor") << "task threw a non-std::exception";
    }
  }
}

}  // namespace mdsm::runtime
