#include "runtime/component_factory.hpp"

#include "common/log.hpp"

namespace mdsm::runtime {

std::string_view to_string(ComponentState state) noexcept {
  switch (state) {
    case ComponentState::kCreated: return "created";
    case ComponentState::kStarted: return "started";
    case ComponentState::kStopped: return "stopped";
  }
  return "?";
}

Status ComponentFactory::register_template(const std::string& template_name,
                                           Builder builder) {
  if (builder == nullptr) {
    return InvalidArgument("template '" + template_name +
                           "' has a null builder");
  }
  auto [it, inserted] = templates_.emplace(template_name, std::move(builder));
  if (!inserted) {
    return AlreadyExists("template '" + template_name +
                         "' already registered");
  }
  return Status::Ok();
}

bool ComponentFactory::has_template(std::string_view template_name) const {
  return templates_.find(template_name) != templates_.end();
}

std::vector<std::string> ComponentFactory::template_names() const {
  std::vector<std::string> names;
  names.reserve(templates_.size());
  for (const auto& [name, builder] : templates_) names.push_back(name);
  return names;
}

Result<std::unique_ptr<Component>> ComponentFactory::instantiate(
    const model::ModelObject& spec, const model::Model& middleware_model) {
  std::string template_name = spec.get_string("template", spec.class_name());
  auto it = templates_.find(template_name);
  if (it == templates_.end()) {
    return NotFound("no component template '" + template_name +
                    "' (needed by model object '" + spec.id() + "')");
  }
  log_debug("factory") << "instantiating '" << spec.id() << "' via template '"
                       << template_name << "'";
  Result<std::unique_ptr<Component>> component =
      it->second(spec, middleware_model);
  if (component.ok() && component.value() == nullptr) {
    return Internal("template '" + template_name +
                    "' returned a null component");
  }
  return component;
}

}  // namespace mdsm::runtime
