// Fixed-size thread pool providing the concurrency model of the generic
// runtime environment ("it also provides threads ... to run the
// middleware components", paper §V-A). Platforms that need determinism
// run single-threaded and never touch the executor; the crowdsensing
// fleet and benches use it for genuine parallelism.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdsm::runtime {

class Executor {
 public:
  explicit Executor(unsigned thread_count = std::thread::hardware_concurrency());
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void drain();

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace mdsm::runtime
