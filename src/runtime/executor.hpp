// Fixed-size thread pool providing the concurrency model of the generic
// runtime environment ("it also provides threads ... to run the
// middleware components", paper §V-A). Platforms that need determinism
// run single-threaded and never touch the executor; the crowdsensing
// fleet and benches use it for genuine parallelism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mdsm::runtime {

class Executor {
 public:
  explicit Executor(unsigned thread_count = std::thread::hardware_concurrency());
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads.
  /// A task that throws does not kill the worker or the process: the
  /// exception is caught, counted in task_failures() (and the
  /// "runtime.executor_task_failures" metric when one is attached) and
  /// logged; the pool keeps serving and drain() still returns.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void drain();

  /// Platform-wide metrics sink (optional). Call before submitting.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    failures_counter_ =
        metrics == nullptr
            ? nullptr
            : &metrics->counter("runtime.executor_task_failures");
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t pending() const;
  /// Tasks whose invocation threw (contained, never propagated).
  [[nodiscard]] std::uint64_t task_failures() const noexcept {
    return task_failures_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool shutting_down_ = false;
  std::atomic<std::uint64_t> task_failures_{0};
  obs::Counter* failures_counter_ = nullptr;
};

}  // namespace mdsm::runtime
