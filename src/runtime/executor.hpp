// Fixed-size thread pool providing the concurrency model of the generic
// runtime environment ("it also provides threads ... to run the
// middleware components", paper §V-A). Platforms that need determinism
// run single-threaded and never touch the executor; the crowdsensing
// fleet and benches use it for genuine parallelism.
//
// Overload protection (PR 5): the queue may be bounded
// (ExecutorConfig::queue_capacity) with a pluggable overflow policy —
// kReject (fail the submit), kBlock (wait for space), kShedOldest (drop
// the oldest queued task to admit the newest). Two priority lanes
// (kHigh drains before kNormal) let control-plane traffic overtake bulk
// work. Every queued task is stamped at enqueue; the dequeue records the
// queue delay in the "runtime.queue_delay_us" histogram so admission
// control can see queue pressure building.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace mdsm::runtime {

/// What a bounded executor does with a submit that finds the queue full.
enum class OverflowPolicy {
  kReject,     ///< fail the submit with kUnavailable
  kBlock,      ///< block the submitter until space frees up
  kShedOldest  ///< drop the oldest queued task (its on_shed runs), admit
};

/// Priority lane of a queued task. High-lane tasks are dequeued before
/// any normal-lane task, regardless of arrival order.
enum class TaskLane { kNormal = 0, kHigh = 1 };

struct ExecutorConfig {
  unsigned thread_count = std::thread::hardware_concurrency();
  /// Upper bound on queued (not yet running) tasks across both lanes;
  /// 0 = unbounded (the pre-PR-5 behaviour).
  std::size_t queue_capacity = 0;
  OverflowPolicy overflow_policy = OverflowPolicy::kReject;
};

class Executor {
 public:
  explicit Executor(unsigned thread_count = std::thread::hardware_concurrency());
  explicit Executor(ExecutorConfig config);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// A submission with overload metadata. `on_shed` (optional) is invoked
  /// — outside the executor lock — if the task is dropped by kShedOldest
  /// before it ever ran, so callers can resolve completions exactly once.
  struct Task {
    std::function<void()> run;
    TaskLane lane = TaskLane::kNormal;
    std::function<void()> on_shed;
    /// Mid-pipeline continuation of already-admitted work (PR 6 staged
    /// pipeline): bypasses the capacity bound like a worker self-submit
    /// does — admission happened once at the door, and refusing a hop
    /// would strand the request's completion.
    bool continuation = false;
  };

  /// Enqueue a task. Safe from any thread, including worker threads.
  /// Returns Ok when the task was accepted, kUnavailable when it was
  /// refused — the queue is at capacity under kReject, or shutdown has
  /// begun (a task enqueued after shutdown would never run; refusing is
  /// the only honest answer). Refusals count into rejections() and the
  /// "runtime.executor_rejections" metric. Tasks submitted from a worker
  /// thread of this executor bypass the capacity bound: blocking or
  /// rejecting a worker's own continuation could deadlock a full queue.
  ///
  /// A task that throws does not kill the worker or the process: the
  /// exception is caught, counted in task_failures() (and the
  /// "runtime.executor_task_failures" metric when one is attached) and
  /// logged; the pool keeps serving and drain() still returns.
  Status submit(std::function<void()> task);
  Status submit(Task task);

  /// Block until the queue is empty, no submitter is blocked waiting for
  /// space, and every worker is idle.
  void drain();

  /// Begin shutdown and join all workers. Queued tasks still run;
  /// subsequent submits are rejected. Idempotent; the destructor calls it.
  void shutdown();

  /// Platform-wide metrics sink (optional). Call before submitting.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    if (metrics == nullptr) {
      failures_counter_ = nullptr;
      rejections_counter_ = nullptr;
      shed_counter_ = nullptr;
      queue_delay_histogram_ = nullptr;
      return;
    }
    failures_counter_ = &metrics->counter("runtime.executor_task_failures");
    rejections_counter_ = &metrics->counter("runtime.executor_rejections");
    shed_counter_ = &metrics->counter("runtime.executor_shed");
    queue_delay_histogram_ = &metrics->histogram("runtime.queue_delay_us");
  }

  /// Clock used to stamp enqueue→dequeue delay (default: process steady
  /// clock). Platforms inject theirs so queue delay shares request time.
  void set_clock(const Clock* clock) noexcept {
    if (clock != nullptr) clock_ = clock;
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return config_.queue_capacity;
  }
  [[nodiscard]] std::size_t pending() const;
  /// High-water mark of pending(): the deepest the queue ever got,
  /// continuations included.
  [[nodiscard]] std::size_t max_pending() const noexcept {
    return max_pending_.load(std::memory_order_relaxed);
  }
  /// High-water mark of the bounded backlog: queued non-continuation
  /// tasks, the population queue_capacity actually governs. Continuation
  /// hops ride above this bound (their count is limited by admitted
  /// in-flight work, not by client arrival rate), so this — not
  /// max_pending() — is the gauge that proves the admission bound held.
  [[nodiscard]] std::size_t max_bounded_pending() const noexcept {
    return max_bounded_pending_.load(std::memory_order_relaxed);
  }
  /// Tasks whose invocation threw (contained, never propagated).
  [[nodiscard]] std::uint64_t task_failures() const noexcept {
    return task_failures_.load(std::memory_order_relaxed);
  }
  /// Submits refused (queue full under kReject, or after shutdown).
  [[nodiscard]] std::uint64_t rejections() const noexcept {
    return rejections_.load(std::memory_order_relaxed);
  }
  /// Queued tasks dropped by kShedOldest before running.
  [[nodiscard]] std::uint64_t shed_tasks() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  struct Queued {
    std::function<void()> run;
    std::function<void()> on_shed;
    TimePoint enqueued_at;
    bool continuation = false;
  };

  void worker_loop();
  Status reject(const char* why);
  [[nodiscard]] std::size_t queued_unlocked() const noexcept {
    return queues_[0].size() + queues_[1].size();
  }

  ExecutorConfig config_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::condition_variable space_;  ///< kBlock submitters wait here
  std::deque<Queued> queues_[2];   ///< indexed by TaskLane
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  unsigned blocked_submitters_ = 0;
  std::size_t bounded_pending_ = 0;  ///< queued non-continuation tasks
  bool shutting_down_ = false;
  bool joined_ = false;
  std::atomic<std::size_t> max_pending_{0};
  std::atomic<std::size_t> max_bounded_pending_{0};
  std::atomic<std::uint64_t> task_failures_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> shed_{0};
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* rejections_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Histogram* queue_delay_histogram_ = nullptr;
};

}  // namespace mdsm::runtime
