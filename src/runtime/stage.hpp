// Stage/Continuation layer of the event-driven core (PR 6). A request
// traversing the four layers is no longer a thread parked end-to-end:
// it is a small state object hopping between named stages, where each
// hop enqueues a one-shot Continuation on the shared Executor and
// releases the current worker.
//
// Stages are *logical* queues over one physical worker pool: every
// stage keeps its own depth gauge, high-water mark and enqueue→dequeue
// delay histogram ("stage.<name>.delay_us"), so overload shows *where*
// in the pipeline requests pile up — the per-stage visibility PR 5's
// single pipeline queue could not give. Capacity bounds and shed
// policies still live in the Executor, but they only apply to entry
// submissions: hops marked `continuation` bypass the bound, because
// refusing admitted work mid-pipeline would strand its completion (the
// admission decision was made once, at the door).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"

namespace mdsm::runtime {

/// A one-shot closure resumed exactly once on an executor worker.
using Continuation = std::function<void()>;

class StagePipeline {
 public:
  /// Metrics may be null (tests); stages then keep counters only.
  StagePipeline(Executor& executor, const Clock& clock,
                obs::MetricsRegistry* metrics);

  StagePipeline(const StagePipeline&) = delete;
  StagePipeline& operator=(const StagePipeline&) = delete;

  /// Register a stage; returns its index for submit(). Not synchronized
  /// against submit(): register every stage before traffic starts (the
  /// platform registers its fixed set at pipeline creation).
  std::size_t add_stage(std::string name);

  struct SubmitOptions {
    TaskLane lane = TaskLane::kNormal;
    /// Mid-pipeline hop of already-admitted work: bypasses the
    /// executor's capacity bound and can never be rejected or shed.
    bool continuation = false;
    /// Runs if the queued continuation is dropped by kShedOldest before
    /// it ever ran (entry submissions only).
    std::function<void()> on_shed;
  };

  /// Enqueue `fn` on `stage`. Depth/delay accounting wraps the run; the
  /// executor's overflow policy decides refusals for non-continuation
  /// submissions (a refusal leaves the stage's gauges untouched).
  Status submit(std::size_t stage, Continuation fn, SubmitOptions options);
  Status submit(std::size_t stage, Continuation fn) {
    return submit(stage, std::move(fn), SubmitOptions{});
  }

  struct StageStats {
    std::string name;
    std::size_t depth = 0;      ///< currently queued, not yet started
    std::size_t max_depth = 0;  ///< deepest the stage queue ever got
    std::uint64_t entered = 0;  ///< accepted submissions
    std::uint64_t shed = 0;     ///< dropped by kShedOldest while queued
  };
  [[nodiscard]] std::vector<StageStats> stats() const;
  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stages_.size();
  }
  [[nodiscard]] std::size_t depth(std::size_t stage) const;

 private:
  struct Stage {
    std::string name;
    obs::Histogram* delay = nullptr;   ///< "stage.<name>.delay_us"
    obs::Counter* entered_counter = nullptr;
    std::atomic<std::size_t> depth{0};
    std::atomic<std::size_t> max_depth{0};
    std::atomic<std::uint64_t> entered{0};
    std::atomic<std::uint64_t> shed{0};
  };

  Executor* executor_;
  const Clock* clock_;
  obs::MetricsRegistry* metrics_;
  /// unique_ptr for stable addresses: queued closures hold Stage*
  /// across add_stage() growth. Add-only.
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace mdsm::runtime
