#include "runtime/timer_service.hpp"

#include <vector>

#include "common/log.hpp"

namespace mdsm::runtime {

std::uint64_t TimerService::schedule(Duration delay, Callback callback) {
  std::uint64_t id = next_id();
  auto it = timers_.emplace(clock_->now() + delay,
                            Entry{id, std::move(callback)});
  index_.emplace(id, it);
  return id;
}

bool TimerService::cancel(std::uint64_t timer_id) {
  auto indexed = index_.find(timer_id);
  if (indexed == index_.end()) return false;
  timers_.erase(indexed->second);
  index_.erase(indexed);
  return true;
}

std::size_t TimerService::run_due() {
  // Snapshot the ids due at entry, in deadline order. Only these fire in
  // this call: a callback that schedules a new timer — even with zero
  // delay — defers it to the next tick, deterministically. Ids (not
  // iterators) survive callbacks mutating the maps; a callback that
  // cancels a due-but-unfired timer removes its id from the index and
  // the drain skips it.
  const TimePoint now = clock_->now();
  std::vector<std::uint64_t> due;
  for (auto it = timers_.begin(); it != timers_.end() && it->first <= now;
       ++it) {
    due.push_back(it->second.id);
  }
  std::size_t fired = 0;
  for (std::uint64_t id : due) {
    auto indexed = index_.find(id);
    if (indexed == index_.end()) continue;  // cancelled mid-drain
    Callback callback = std::move(indexed->second->second.callback);
    timers_.erase(indexed->second);
    index_.erase(indexed);
    // The timer is retired before its callback runs, so a throw cannot
    // leave a half-fired entry behind; it counts as fired (it ran) and
    // the drain moves on to the next due deadline.
    ++fired;
    try {
      callback();
    } catch (const std::exception& e) {
      ++callback_failures_;
      log_error("timer-service") << "timer callback threw: " << e.what();
    } catch (...) {
      ++callback_failures_;
      log_error("timer-service") << "timer callback threw a non-std "
                                    "exception";
    }
  }
  return fired;
}

std::optional<TimerService::Callback> TimerService::take_due(TimePoint now) {
  if (timers_.empty()) return std::nullopt;
  auto it = timers_.begin();
  if (it->first > now) return std::nullopt;
  Callback callback = std::move(it->second.callback);
  index_.erase(it->second.id);
  timers_.erase(it);
  return callback;
}

std::optional<TimerService::Callback> TimerService::take_earliest() {
  if (timers_.empty()) return std::nullopt;
  auto it = timers_.begin();
  Callback callback = std::move(it->second.callback);
  index_.erase(it->second.id);
  timers_.erase(it);
  return callback;
}

std::optional<TimePoint> TimerService::next_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.begin()->first;
}

std::size_t TimerService::due_count(TimePoint now) const {
  std::size_t due = 0;
  for (auto it = timers_.begin(); it != timers_.end() && it->first <= now;
       ++it) {
    ++due;
  }
  return due;
}

}  // namespace mdsm::runtime
