#include "runtime/timer_service.hpp"

#include "common/log.hpp"

namespace mdsm::runtime {

std::uint64_t TimerService::schedule(Duration delay, Callback callback) {
  std::uint64_t id = next_id();
  auto it = timers_.emplace(clock_->now() + delay,
                            Entry{id, std::move(callback)});
  index_.emplace(id, it);
  return id;
}

bool TimerService::cancel(std::uint64_t timer_id) {
  auto indexed = index_.find(timer_id);
  if (indexed == index_.end()) return false;
  timers_.erase(indexed->second);
  index_.erase(indexed);
  return true;
}

std::size_t TimerService::run_due() {
  std::size_t fired = 0;
  // Re-read now() each round: callbacks may schedule timers that are
  // already due (delay zero) and must fire in this call.
  while (!timers_.empty()) {
    auto it = timers_.begin();
    if (it->first > clock_->now()) break;
    Callback callback = std::move(it->second.callback);
    index_.erase(it->second.id);
    timers_.erase(it);
    // The timer is retired before its callback runs, so a throw cannot
    // leave a half-fired entry behind; it counts as fired (it ran) and
    // the drain moves on to the next due deadline.
    ++fired;
    try {
      callback();
    } catch (const std::exception& e) {
      ++callback_failures_;
      log_error("timer-service") << "timer callback threw: " << e.what();
    } catch (...) {
      ++callback_failures_;
      log_error("timer-service") << "timer callback threw a non-std "
                                    "exception";
    }
  }
  return fired;
}

std::optional<TimePoint> TimerService::next_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.begin()->first;
}

}  // namespace mdsm::runtime
