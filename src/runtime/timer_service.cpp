#include "runtime/timer_service.hpp"

#include <vector>

namespace mdsm::runtime {

std::uint64_t TimerService::schedule(Duration delay, Callback callback) {
  std::uint64_t id = next_id();
  timers_.emplace(clock_->now() + delay, Entry{id, std::move(callback)});
  return id;
}

bool TimerService::cancel(std::uint64_t timer_id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == timer_id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t TimerService::run_due() {
  std::size_t fired = 0;
  // Re-read now() each round: callbacks may schedule timers that are
  // already due (delay zero) and must fire in this call.
  while (!timers_.empty()) {
    auto it = timers_.begin();
    if (it->first > clock_->now()) break;
    Callback callback = std::move(it->second.callback);
    timers_.erase(it);
    callback();
    ++fired;
  }
  return fired;
}

std::optional<TimePoint> TimerService::next_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.begin()->first;
}

}  // namespace mdsm::runtime
