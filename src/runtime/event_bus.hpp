// Topic-based publish/subscribe bus used inside a platform instance for
// layer-internal eventing (broker resource events, controller exceptional
// conditions, autonomic symptoms). Dispatch is synchronous and in
// subscription order, which keeps command traces deterministic — the
// cross-node asynchronous path is src/net, not this bus.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "model/value.hpp"

namespace mdsm::runtime {

struct Event {
  std::string topic;
  std::string source;         ///< emitting component name
  model::Value payload;
  std::uint64_t id = 0;       ///< assigned by publish()
  std::uint64_t request_id = 0;  ///< originating request; stamped by
                                 ///< publish() from the ambient
                                 ///< obs::RequestContext when 0
};

class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Subscribe to an exact topic, or a prefix wildcard like "resource.*".
  /// Returns a subscription id for unsubscribe().
  std::uint64_t subscribe(std::string topic, Handler handler);

  void unsubscribe(std::uint64_t subscription_id);

  /// Deliver synchronously to every matching subscriber, in subscription
  /// order. Returns the number of handlers invoked.
  std::size_t publish(Event event);

  /// Convenience overload.
  std::size_t publish(std::string topic, std::string source,
                      model::Value payload = {});

  [[nodiscard]] std::size_t subscription_count() const;
  /// Total events published. Atomic so concurrent publishers and readers
  /// (monitors, tests) never race — publish() increments it lock-free.
  [[nodiscard]] std::uint64_t published_count() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  struct Subscription {
    std::uint64_t id;
    std::string topic;
    bool wildcard;  ///< topic ends in ".*" (or is "*")
    Handler handler;
  };

  static bool matches(const Subscription& sub, std::string_view topic);

  mutable std::mutex mutex_;
  std::vector<Subscription> subscriptions_;
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace mdsm::runtime
