#include "cluster/shard_ring.hpp"

#include <algorithm>
#include <string>

namespace mdsm::cluster {

namespace {

/// 64-bit avalanche finalizer (murmur3 fmix64) over the raw FNV hash.
/// Raw FNV-1a clusters inputs that differ only in their last bytes —
/// the final byte is multiplied by the prime just once, so "s1"/"s2"
/// land ~2^40 apart on a 2^64 circle and a shard's virtual nodes
/// collapse into a few tight arcs. Mixing restores uniform placement.
constexpr std::uint64_t avalanche(std::uint64_t hash) noexcept {
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

constexpr std::uint64_t ring_position(std::string_view bytes) noexcept {
  return avalanche(fnv1a(bytes));
}

}  // namespace

ShardRing::ShardRing(std::size_t shards, std::size_t virtual_nodes)
    : shards_(std::max<std::size_t>(shards, 1)) {
  const std::size_t points = std::max<std::size_t>(virtual_nodes, 1);
  ring_.reserve(shards_ * points);
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t v = 0; v < points; ++v) {
      const std::string label =
          "shard-" + std::to_string(shard) + "#" + std::to_string(v);
      ring_.push_back(Point{ring_position(label), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Shard index tiebreaks a (vanishingly unlikely) position collision
    // so the ring is deterministic regardless of construction order.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

std::size_t ShardRing::owner_point(std::string_view key) const noexcept {
  const std::uint64_t position = ring_position(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& point, std::uint64_t pos) { return point.position < pos; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return static_cast<std::size_t>(it - ring_.begin());
}

std::size_t ShardRing::owner(std::string_view key) const noexcept {
  return ring_[owner_point(key)].shard;
}

std::size_t ShardRing::replica(std::string_view key) const noexcept {
  const std::size_t start = owner_point(key);
  const std::size_t owner_shard = ring_[start].shard;
  for (std::size_t step = 1; step < ring_.size(); ++step) {
    const Point& point = ring_[(start + step) % ring_.size()];
    if (point.shard != owner_shard) return point.shard;
  }
  return owner_shard;  // single-shard ring: no distinct replica exists
}

}  // namespace mdsm::cluster
