#include "cluster/shard_ring.hpp"

#include <algorithm>
#include <string>

namespace mdsm::cluster {

namespace {

/// 64-bit avalanche finalizer (murmur3 fmix64) over the raw FNV hash.
/// Raw FNV-1a clusters inputs that differ only in their last bytes —
/// the final byte is multiplied by the prime just once, so "s1"/"s2"
/// land ~2^40 apart on a 2^64 circle and a shard's virtual nodes
/// collapse into a few tight arcs. Mixing restores uniform placement.
constexpr std::uint64_t avalanche(std::uint64_t hash) noexcept {
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

constexpr std::uint64_t ring_position(std::string_view bytes) noexcept {
  return avalanche(fnv1a(bytes));
}

std::uint64_t vnode_position(std::size_t shard, std::size_t vnode) {
  const std::string label =
      "shard-" + std::to_string(shard) + "#" + std::to_string(vnode);
  return ring_position(label);
}

/// The shard owning `position` in a sorted point vector: first point at
/// or clockwise of it, wrapping past the top.
template <typename Point>
std::size_t owner_at(const std::vector<Point>& points,
                     std::uint64_t position) noexcept {
  auto it = std::lower_bound(
      points.begin(), points.end(), position,
      [](const Point& point, std::uint64_t pos) { return point.position < pos; });
  if (it == points.end()) it = points.begin();
  return it->shard;
}

}  // namespace

std::uint64_t ShardRing::position(std::string_view key) noexcept {
  return ring_position(key);
}

ShardRing::ShardRing(std::size_t shards, std::size_t virtual_nodes)
    : shards_(std::max<std::size_t>(shards, 1)),
      virtual_nodes_(std::max<std::size_t>(virtual_nodes, 1)) {
  ring_.reserve(shards_ * virtual_nodes_);
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t v = 0; v < virtual_nodes_; ++v) {
      ring_.push_back(Point{vnode_position(shard, v), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Shard index tiebreaks a (vanishingly unlikely) position collision
    // so the ring is deterministic regardless of construction order.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

std::size_t ShardRing::owner_point(std::string_view key) const noexcept {
  const std::uint64_t position = ring_position(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& point, std::uint64_t pos) { return point.position < pos; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return static_cast<std::size_t>(it - ring_.begin());
}

std::size_t ShardRing::owner(std::string_view key) const noexcept {
  return ring_[owner_point(key)].shard;
}

std::size_t ShardRing::replica(std::string_view key) const noexcept {
  const std::size_t start = owner_point(key);
  const std::size_t owner_shard = ring_[start].shard;
  for (std::size_t step = 1; step < ring_.size(); ++step) {
    const Point& point = ring_[(start + step) % ring_.size()];
    if (point.shard != owner_shard) return point.shard;
  }
  return owner_shard;  // single-shard ring: no distinct replica exists
}

bool ShardRing::contains(std::size_t shard) const noexcept {
  for (const Point& point : ring_) {
    if (point.shard == shard) return true;
  }
  return false;
}

std::vector<std::size_t> ShardRing::members() const {
  std::vector<std::size_t> ids;
  for (const Point& point : ring_) ids.push_back(point.shard);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

namespace {

/// Walk the union of both rings' point positions; within each segment
/// between consecutive boundaries no point is crossed in either ring,
/// so ownership is constant there and equals the owner of the
/// segment's end position. Emit the segments whose owner changed.
std::vector<ShardRing::Arc> moved_arcs(
    const std::vector<std::uint64_t>& before_positions,
    const auto& before_points, const auto& after_points,
    const std::vector<std::uint64_t>& after_positions) {
  std::vector<std::uint64_t> boundaries;
  boundaries.reserve(before_positions.size() + after_positions.size());
  boundaries.insert(boundaries.end(), before_positions.begin(),
                    before_positions.end());
  boundaries.insert(boundaries.end(), after_positions.begin(),
                    after_positions.end());
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::vector<ShardRing::Arc> arcs;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const std::uint64_t end = boundaries[i];
    const std::uint64_t begin =
        boundaries[i == 0 ? boundaries.size() - 1 : i - 1];
    const std::size_t from = owner_at(before_points, end);
    const std::size_t to = owner_at(after_points, end);
    if (from == to) continue;
    // Coalesce with the previous arc when contiguous and same movement.
    if (!arcs.empty() && arcs.back().end == begin &&
        arcs.back().from == from && arcs.back().to == to) {
      arcs.back().end = end;
    } else {
      arcs.push_back(ShardRing::Arc{begin, end, from, to});
    }
  }
  return arcs;
}

}  // namespace

std::vector<ShardRing::Arc> ShardRing::add_shard(std::size_t shard) {
  if (contains(shard)) return {};

  std::vector<std::uint64_t> before_positions;
  before_positions.reserve(ring_.size());
  for (const Point& point : ring_) before_positions.push_back(point.position);
  const std::vector<Point> before = ring_;

  std::vector<std::uint64_t> added_positions;
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    const std::uint64_t position = vnode_position(shard, v);
    added_positions.push_back(position);
    ring_.push_back(Point{position, shard});
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
  ++shards_;
  return moved_arcs(before_positions, before, ring_, added_positions);
}

std::vector<ShardRing::Arc> ShardRing::remove_shard(std::size_t shard) {
  if (!contains(shard) || shards_ <= 1) return {};

  std::vector<std::uint64_t> removed_positions;
  std::vector<std::uint64_t> before_positions;
  before_positions.reserve(ring_.size());
  for (const Point& point : ring_) {
    before_positions.push_back(point.position);
    if (point.shard == shard) removed_positions.push_back(point.position);
  }
  const std::vector<Point> before = ring_;

  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const Point& point) {
                               return point.shard == shard;
                             }),
              ring_.end());
  --shards_;
  return moved_arcs(before_positions, before, ring_, removed_positions);
}

bool ShardRing::arcs_contain(const std::vector<Arc>& arcs,
                             std::string_view key) noexcept {
  const std::uint64_t position = ring_position(key);
  for (const Arc& arc : arcs) {
    if (arc.begin < arc.end) {
      if (position > arc.begin && position <= arc.end) return true;
    } else if (arc.begin > arc.end) {  // wraps past the top
      if (position > arc.begin || position <= arc.end) return true;
    } else {
      return true;  // degenerate full-circle arc
    }
  }
  return false;
}

double ShardRing::arcs_fraction(const std::vector<Arc>& arcs) noexcept {
  long double covered = 0.0L;
  for (const Arc& arc : arcs) {
    // Unsigned subtraction wraps exactly like the circle does; a
    // degenerate begin == end arc covers the whole circle.
    const std::uint64_t length = arc.end - arc.begin;
    covered += length == 0 ? 18446744073709551615.0L
                           : static_cast<long double>(length);
  }
  return static_cast<double>(covered / 18446744073709551616.0L);
}

}  // namespace mdsm::cluster
