#include "cluster/cluster_front_end.hpp"

#include <utility>

#include "model/diff.hpp"
#include "model/text_format.hpp"

namespace mdsm::cluster {

namespace wire = ingress::wire;

ClusterFrontEnd::ClusterFrontEnd(net::Network& network,
                                 model::Model authoritative)
    : network_(&network), authoritative_(std::move(authoritative)) {}

Result<std::unique_ptr<ClusterFrontEnd>> ClusterFrontEnd::attach(
    net::Network& network, const model::Model& authoritative_model,
    std::vector<std::string> shard_endpoints, ClusterConfig config) {
  if (shard_endpoints.empty()) {
    return InvalidArgument("a cluster needs at least one shard endpoint");
  }
  Result<net::Endpoint*> created = network.create_endpoint(config.endpoint);
  if (!created.ok()) return created.status();

  std::unique_ptr<ClusterFrontEnd> front(
      new ClusterFrontEnd(network, authoritative_model.clone()));
  front->endpoint_ = network.endpoint_handle(config.endpoint);
  front->endpoint_name_ = config.endpoint;
  front->ring_ = ShardRing(shard_endpoints.size(), config.virtual_nodes);

  for (std::size_t i = 0; i < shard_endpoints.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = shard_endpoints[i];
    ingress::IngressClientOptions client_options;
    // One downstream stub per shard, each on its own endpoint so reply
    // correlation never crosses shards.
    client_options.endpoint =
        config.endpoint + ".to." + std::to_string(i);
    client_options.reply_timeout = config.downstream_reply_timeout;
    client_options.retry_budget = config.downstream_retry_budget;
    Result<std::unique_ptr<ingress::IngressClient>> client =
        ingress::IngressClient::attach(network, shard_endpoints[i],
                                       std::move(client_options));
    if (!client.ok()) {
      front.reset();  // destructor unwinds endpoints created so far
      return client.status();
    }
    shard->client = std::move(client).value();
    shard->breaker = std::make_unique<broker::CircuitBreaker>(config.health);
    front->shards_.push_back(std::move(shard));
  }
  front->config_ = std::move(config);

  Status routes = front->router_.add(
      wire::kSubmitPattern,
      [raw = front.get()](const net::Message& message,
                          const ingress::RouteParams& params) {
        raw->handle_submit(message, params);
      });
  if (routes.ok()) {
    routes = front->router_.add(
        wire::kQueryPattern,
        [raw = front.get()](const net::Message& message,
                            const ingress::RouteParams& params) {
          raw->handle_query(message, params);
        });
  }
  if (!routes.ok()) {
    front.reset();
    return routes;
  }

  // Last: traffic may arrive the moment the handler lands.
  ClusterFrontEnd* raw = front.get();
  front->endpoint_->set_handler(
      [raw](const net::Message& message) { raw->on_message(message); });
  return front;
}

ClusterFrontEnd::~ClusterFrontEnd() {
  if (endpoint_ != nullptr) {
    endpoint_->set_handler(nullptr);
    // Downstream clients resolve their pending forwards on destruction;
    // quiescing the public endpoint first means no new ones arrive.
    shards_.clear();
    if (!endpoint_->detached()) network_->remove_endpoint(endpoint_name_);
  }
}

std::size_t ClusterFrontEnd::shard_for(std::string_view session) const {
  const std::size_t primary = ring_.owner(session);
  // Peek, don't admit: state() alone — an admit() here would consume
  // half-open probe slots that belong to real traffic.
  if (shards_[primary]->breaker->state() ==
      broker::CircuitBreaker::State::kOpen) {
    return ring_.replica(session);
  }
  return primary;
}

void ClusterFrontEnd::on_message(const net::Message& message) {
  received_.fetch_add(1, std::memory_order_relaxed);
  std::optional<ingress::Router::Match> match = router_.route(message.topic);
  if (!match.has_value()) {
    Result<wire::Request> decoded = wire::decode_request(message.payload);
    const std::uint64_t id = decoded.ok() ? decoded.value().request_id : 0;
    refuse(message.from, id,
           NotFound("no route for topic '" + message.topic + "'"),
           "no-route");
    return;
  }
  (*match->handler)(message, match->params);
}

void ClusterFrontEnd::handle_submit(const net::Message& message,
                                    const ingress::RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }
  wire::Request request = std::move(decoded).value();

  Forward state;
  state.client = message.from;
  state.id = request.request_id;
  state.session = std::string(params.get("session"));
  state.dsml = std::string(params.get("dsml"));
  state.text = std::move(request.text);
  state.high_priority = request.high_priority;
  if (request.deadline_us > 0) {
    state.deadline = Duration(request.deadline_us);
  }

  const std::size_t primary = ring_.owner(state.session);
  const std::size_t replica = ring_.replica(state.session);
  std::size_t target = primary;
  if (config_.failover && replica != primary) state.fallback = replica;

  // Health gate: an open primary window reroutes the whole attempt to
  // the replica (which then has no further fallback).
  broker::CircuitBreaker::AdmitResult admit =
      shards_[primary]->breaker->admit(network_->clock().now());
  if (admit.admission == broker::CircuitBreaker::Admission::kReject) {
    if (replica == primary) {
      refuse(message.from, state.id,
             Unavailable("shard " + std::to_string(primary) +
                         " is unhealthy and the ring has no replica"),
             "shard-unavailable");
      return;
    }
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    target = replica;
    state.fallback.reset();
    state.admission = broker::CircuitBreaker::Admission::kAllow;
  } else {
    state.admission = admit.admission;  // kAllow, or a half-open kProbe
  }
  forward(std::move(state), target);
}

void ClusterFrontEnd::forward(Forward state, std::size_t shard_index) {
  // Shared ownership: the downstream callback needs the state to settle
  // the outcome, but a send failure drops that callback unfired and the
  // failure path here still needs it for the failover/refusal.
  auto shared = std::make_shared<Forward>(std::move(state));
  Shard& shard = *shards_[shard_index];

  ingress::RemoteSubmitOptions options;
  options.deadline = shared->deadline;
  options.high_priority = shared->high_priority;
  // The retry-stable identity: shard-side tracing and the dedup ledger
  // key on the ORIGINAL client and id, not this hop's.
  options.forwarded_for =
      shared->client + "#" + std::to_string(shared->id);

  Result<std::uint64_t> sent = shard.client->submit(
      shared->dsml, shared->session, shared->text,
      [this, shard_index, shared](const ingress::RemoteOutcome& outcome) {
        settle_forward(*shared, shard_index, outcome);
      },
      std::move(options));
  if (!sent.ok()) {
    // The network layer refused the send outright (shard endpoint gone
    // mid-teardown): the callback will never fire, so settle here with
    // a synthetic lost outcome — same failover/refusal path.
    ingress::RemoteOutcome outcome;
    outcome.request_id = shared->id;
    outcome.status = sent.status();
    outcome.refusal = "reply-lost";
    settle_forward(*shared, shard_index, outcome);
    return;
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterFrontEnd::settle_forward(Forward& state, std::size_t shard_index,
                                     const ingress::RemoteOutcome& outcome) {
  // A shard that answered — even with a refusal — is alive; only a lost
  // reply (or an unreachable endpoint) marks it unhealthy.
  const bool lost = outcome.refusal == "reply-lost";
  record_health(shard_index, state.admission, !lost);
  if (lost && state.fallback.has_value() && *state.fallback != shard_index) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    Forward retry = std::move(state);
    const std::size_t fallback = *retry.fallback;
    retry.fallback.reset();
    retry.admission = broker::CircuitBreaker::Admission::kAllow;
    forward(std::move(retry), fallback);
    return;
  }
  wire::Reply reply;
  reply.request_id = state.id;
  reply.code = outcome.status.code();
  reply.refusal = outcome.refusal;
  reply.message =
      outcome.status.ok() ? outcome.payload : outcome.status.message();
  reply.commands = outcome.commands;
  send_reply(state.client, std::move(reply));
}

void ClusterFrontEnd::handle_query(const net::Message& message,
                                   const ingress::RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }
  const std::uint64_t id = decoded.value().request_id;
  const std::string what(params.get("what"));
  query_fanouts_.fetch_add(1, std::memory_order_relaxed);

  // Fan out to every shard and merge: the join fires the client reply
  // when the last downstream outcome (success, refusal or loss) lands.
  struct Join {
    std::mutex mutex;
    std::size_t remaining = 0;
    std::vector<std::string> parts;
  };
  auto join = std::make_shared<Join>();
  join->remaining = shards_.size();
  join->parts.resize(shards_.size());
  const std::string to = message.from;

  auto settle = [this, join, to, id](std::size_t index, std::string part) {
    bool last = false;
    {
      std::lock_guard lock(join->mutex);
      join->parts[index] = std::move(part);
      last = --join->remaining == 0;
    }
    if (!last) return;
    wire::Reply reply;
    reply.request_id = id;
    for (std::size_t i = 0; i < join->parts.size(); ++i) {
      reply.message += "=== shard " + std::to_string(i) + " ===\n";
      reply.message += join->parts[i];
      reply.message += "\n";
    }
    send_reply(to, std::move(reply));
  };

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Result<std::uint64_t> sent = shards_[i]->client->query(
        what, [settle, i](const ingress::RemoteOutcome& outcome) {
          settle(i, outcome.status.ok()
                        ? outcome.payload
                        : "<" + std::string(outcome.refusal.empty()
                                                ? "error"
                                                : outcome.refusal) +
                              ">");
        });
    if (!sent.ok()) settle(i, "<unreachable>");
  }
}

Status ClusterFrontEnd::update_model(const model::Model& next_model) {
  model::ChangeList changes;
  model::Value encoded;
  {
    std::lock_guard lock(model_mutex_);
    changes = model::diff(authoritative_, next_model);
    if (changes.empty()) return Status::Ok();
    encoded = model::encode_changes(changes);
    // The bytes a full-model push would have cost vs what the delta
    // actually costs — the savings BENCH_8 reports.
    full_bytes_.fetch_add(model::serialize_model(next_model).size(),
                          std::memory_order_relaxed);
    delta_bytes_.fetch_add(encoded.to_text().size(),
                           std::memory_order_relaxed);
    deltas_shipped_.fetch_add(1, std::memory_order_relaxed);
    authoritative_ = next_model.clone();
  }

  Status first_failure = Status::Ok();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    wire::Request request;
    request.body = encoded;
    Result<std::uint64_t> sent = shards_[i]->client->call(
        "replicate/model-diff", std::move(request),
        [this](const ingress::RemoteOutcome& outcome) {
          if (outcome.status.ok()) {
            replication_acks_.fetch_add(1, std::memory_order_relaxed);
          } else {
            replication_failures_.fetch_add(1, std::memory_order_relaxed);
          }
        });
    if (!sent.ok()) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      if (first_failure.ok()) first_failure = sent.status();
    }
  }
  return first_failure;
}

std::size_t ClusterFrontEnd::maintain() {
  std::size_t resolved = 0;
  for (auto& shard : shards_) resolved += shard->client->expire_overdue();
  return resolved;
}

void ClusterFrontEnd::send_reply(const std::string& to, wire::Reply reply) {
  // Reentrant sends are legal on the simulated bus (handlers run outside
  // the network lock), so replies go straight out from the delivery
  // thread — the front-end has no pipeline of its own to keep clear.
  Status sent = endpoint_->send(to, std::string(wire::kReplyTopic),
                                wire::encode_reply(reply));
  if (sent.ok()) {
    replies_.fetch_add(1, std::memory_order_relaxed);
  } else {
    reply_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ClusterFrontEnd::refuse(const std::string& to, std::uint64_t request_id,
                             const Status& status, std::string refusal) {
  if (refusal.empty()) refusal = std::string(wire::classify_refusal(status));
  refused_.fetch_add(1, std::memory_order_relaxed);
  wire::Reply reply;
  reply.request_id = request_id;
  reply.code = status.code();
  reply.refusal = std::move(refusal);
  reply.message = status.message();
  send_reply(to, std::move(reply));
}

void ClusterFrontEnd::record_health(
    std::size_t shard_index, broker::CircuitBreaker::Admission admission,
    bool success) {
  const broker::CircuitBreaker::Transition transition =
      shards_[shard_index]->breaker->on_result(admission, success,
                                               network_->clock().now());
  if (transition == broker::CircuitBreaker::Transition::kOpened) {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

ClusterFrontEnd::Stats ClusterFrontEnd::stats() const {
  Stats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.rerouted = rerouted_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.replies = replies_.load(std::memory_order_relaxed);
  stats.reply_failures = reply_failures_.load(std::memory_order_relaxed);
  stats.query_fanouts = query_fanouts_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.deltas_shipped = deltas_shipped_.load(std::memory_order_relaxed);
  stats.delta_bytes = delta_bytes_.load(std::memory_order_relaxed);
  stats.full_bytes = full_bytes_.load(std::memory_order_relaxed);
  stats.replication_acks =
      replication_acks_.load(std::memory_order_relaxed);
  stats.replication_failures =
      replication_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mdsm::cluster
