#include "cluster/cluster_front_end.hpp"

#include <utility>

#include "model/diff.hpp"
#include "model/text_format.hpp"

namespace mdsm::cluster {

namespace wire = ingress::wire;

namespace {

/// Downstream stub options for the shard at `index`: one client per
/// shard, each on its own endpoint so reply correlation never crosses
/// shards.
ingress::IngressClientOptions downstream_options(const ClusterConfig& config,
                                                 std::size_t index) {
  ingress::IngressClientOptions options;
  options.endpoint = config.endpoint + ".to." + std::to_string(index);
  options.reply_timeout = config.downstream_reply_timeout;
  options.retry_budget = config.downstream_retry_budget;
  return options;
}

void raise_acked_version(std::atomic<std::uint64_t>& acked,
                         std::uint64_t version) {
  std::uint64_t current = acked.load(std::memory_order_relaxed);
  while (current < version &&
         !acked.compare_exchange_weak(current, version,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

ClusterFrontEnd::ClusterFrontEnd(net::Network& network,
                                 model::Model authoritative)
    : network_(&network), authoritative_(std::move(authoritative)) {}

Result<std::unique_ptr<ClusterFrontEnd>> ClusterFrontEnd::attach(
    net::Network& network, const model::Model& authoritative_model,
    std::vector<std::string> shard_endpoints, ClusterConfig config) {
  if (shard_endpoints.empty()) {
    return InvalidArgument("a cluster needs at least one shard endpoint");
  }
  Result<net::Endpoint*> created = network.create_endpoint(config.endpoint);
  if (!created.ok()) return created.status();

  std::unique_ptr<ClusterFrontEnd> front(
      new ClusterFrontEnd(network, authoritative_model.clone()));
  front->endpoint_ = network.endpoint_handle(config.endpoint);
  front->endpoint_name_ = config.endpoint;
  front->ring_ = ShardRing(shard_endpoints.size(), config.virtual_nodes);

  for (std::size_t i = 0; i < shard_endpoints.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = shard_endpoints[i];
    Result<std::unique_ptr<ingress::IngressClient>> client =
        ingress::IngressClient::attach(network, shard_endpoints[i],
                                       downstream_options(config, i));
    if (!client.ok()) {
      front.reset();  // destructor unwinds endpoints created so far
      return client.status();
    }
    shard->client = std::move(client).value();
    shard->breaker = std::make_unique<broker::CircuitBreaker>(config.health);
    shard->acked_version.store(1, std::memory_order_relaxed);
    front->shards_.push_back(std::move(shard));
  }
  front->config_ = std::move(config);

  // Session-state replication cadence is model-driven (PR 10): the
  // MiddlewarePlatform root's `checkpoint_interval` attr says how many
  // completed sequenced requests a session accrues between checkpoints.
  auto platforms = authoritative_model.objects_of("MiddlewarePlatform");
  if (!platforms.empty()) {
    front->checkpoint_interval_ =
        platforms[0]->get_int("checkpoint_interval", 0);
  }

  Status routes = front->router_.add(
      wire::kSubmitPattern,
      [raw = front.get()](const net::Message& message,
                          const ingress::RouteParams& params) {
        raw->handle_submit(message, params);
      });
  if (routes.ok()) {
    routes = front->router_.add(
        wire::kQueryPattern,
        [raw = front.get()](const net::Message& message,
                            const ingress::RouteParams& params) {
          raw->handle_query(message, params);
        });
  }
  if (!routes.ok()) {
    front.reset();
    return routes;
  }

  // Last: traffic may arrive the moment the handler lands.
  ClusterFrontEnd* raw = front.get();
  front->endpoint_->set_handler(
      [raw](const net::Message& message) { raw->on_message(message); });
  return front;
}

ClusterFrontEnd::~ClusterFrontEnd() {
  shutting_down_.store(true, std::memory_order_release);
  if (endpoint_ != nullptr) {
    endpoint_->set_handler(nullptr);
    // Downstream clients resolve their pending forwards on destruction
    // (settle_forward sees shutting_down_ and only replies, never fails
    // over); quiescing the public endpoint first means no new ones
    // arrive.
    shards_.clear();
    if (!endpoint_->detached()) network_->remove_endpoint(endpoint_name_);
  }
}

std::size_t ClusterFrontEnd::shard_count() const {
  std::shared_lock lock(topology_mutex_);
  return shards_.size();
}

std::size_t ClusterFrontEnd::active_shard_count() const {
  std::shared_lock lock(topology_mutex_);
  return ring_.shards();
}

ClusterFrontEnd::ShardState ClusterFrontEnd::shard_state(
    std::size_t index) const {
  std::shared_lock lock(topology_mutex_);
  if (index >= shards_.size()) return ShardState::kRetired;
  return shards_[index]->state.load(std::memory_order_acquire);
}

std::size_t ClusterFrontEnd::shard_for(std::string_view session) const {
  std::shared_lock lock(topology_mutex_);
  const std::size_t primary = ring_.owner(session);
  // Peek, don't admit: state() alone — an admit() here would consume
  // half-open probe slots that belong to real traffic.
  if (shards_[primary]->breaker->state() ==
      broker::CircuitBreaker::State::kOpen) {
    return ring_.replica(session);
  }
  return primary;
}

void ClusterFrontEnd::on_message(const net::Message& message) {
  received_.fetch_add(1, std::memory_order_relaxed);
  std::optional<ingress::Router::Match> match = router_.route(message.topic);
  if (!match.has_value()) {
    Result<wire::Request> decoded = wire::decode_request(message.payload);
    const std::uint64_t id = decoded.ok() ? decoded.value().request_id : 0;
    refuse(message.from, id,
           NotFound("no route for topic '" + message.topic + "'"),
           "no-route");
    return;
  }
  (*match->handler)(message, match->params);
}

void ClusterFrontEnd::handle_submit(const net::Message& message,
                                    const ingress::RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }
  wire::Request request = std::move(decoded).value();

  Forward state;
  state.client = message.from;
  state.id = request.request_id;
  state.session = std::string(params.get("session"));
  state.dsml = std::string(params.get("dsml"));
  state.text = std::move(request.text);
  state.high_priority = request.high_priority;
  if (request.deadline_us > 0) {
    state.deadline = Duration(request.deadline_us);
  }

  std::size_t target = 0;
  bool rerouted = false;  // off the owner → resume the session first
  std::optional<Status> refusal;  // decided under the lock, sent outside
  {
    std::shared_lock lock(topology_mutex_);
    const std::size_t primary = ring_.owner(state.session);
    const std::size_t replica = ring_.replica(state.session);
    target = primary;
    if (config_.failover && replica != primary) state.fallback = replica;
    state.epoch = epoch_.load(std::memory_order_acquire);

    // Health gate: an open primary window reroutes the whole attempt to
    // the replica — through the REPLICA's own breaker, so a tripped
    // replica is never dogpiled and its window sees correct verdicts.
    broker::CircuitBreaker::AdmitResult admit =
        shards_[primary]->breaker->admit(network_->clock().now());
    if (admit.admission == broker::CircuitBreaker::Admission::kReject) {
      if (replica == primary) {
        refusal = Unavailable("shard " + std::to_string(primary) +
                              " is unhealthy and the ring has no replica");
      } else {
        broker::CircuitBreaker::AdmitResult replica_admit =
            shards_[replica]->breaker->admit(network_->clock().now());
        if (replica_admit.admission ==
            broker::CircuitBreaker::Admission::kReject) {
          refusal = Unavailable(
              "shards " + std::to_string(primary) + " and " +
              std::to_string(replica) +
              " are both unhealthy (primary and replica windows open)");
        } else {
          rerouted_.fetch_add(1, std::memory_order_relaxed);
          rerouted = true;
          target = replica;
          state.fallback.reset();  // the replica is the last resort
          state.admission = replica_admit.admission;
        }
      }
    } else {
      state.admission = admit.admission;  // kAllow, or a half-open kProbe
    }
  }
  if (refusal.has_value()) {
    refuse(message.from, state.id, *refusal, "shard-unavailable");
    return;
  }
  // Admission-time reroute is a resume path too (PR 10): the rerouted
  // request lands on the replica, which must import the session's last
  // checkpoint before serving or it would restart sequenced work cold.
  if (rerouted) {
    resume_then_forward(std::move(state), target);
    return;
  }
  forward(std::move(state), target);
}

void ClusterFrontEnd::forward(Forward state, std::size_t shard_index) {
  // Shared ownership: the downstream callback needs the state to settle
  // the outcome, but a send failure drops that callback unfired and the
  // failure path here still needs it for the failover/refusal.
  auto shared = std::make_shared<Forward>(std::move(state));
  std::shared_ptr<ingress::IngressClient> client;
  {
    std::shared_lock lock(topology_mutex_);
    client = shards_[shard_index]->client;  // null once retired
  }

  ingress::RemoteSubmitOptions options;
  options.deadline = shared->deadline;
  options.high_priority = shared->high_priority;
  // Loss detection runs on the hop's own reply_timeout cadence, NOT
  // reply_timeout + deadline: a failover must happen while the client's
  // deadline still has budget left, or it could only ever refuse.
  options.wait_includes_deadline = false;
  // The retry-stable identity: shard-side tracing and the dedup ledger
  // key on the ORIGINAL client and id, not this hop's.
  options.forwarded_for =
      shared->client + "#" + std::to_string(shared->id);

  shared->sent_at = network_->clock().now();
  Result<std::uint64_t> sent =
      client == nullptr
          ? Result<std::uint64_t>(Unavailable(
                "shard " + std::to_string(shard_index) + " is retired"))
          : client->submit(
                shared->dsml, shared->session, shared->text,
                [this, shard_index, shared](
                    const ingress::RemoteOutcome& outcome) {
                  settle_forward(*shared, shard_index, outcome);
                },
                std::move(options));
  if (!sent.ok()) {
    // The downstream refused the send outright (shard endpoint gone
    // mid-teardown, or a draining client closed under us): the callback
    // will never fire, so settle here with a synthetic lost outcome —
    // same failover/refusal path.
    ingress::RemoteOutcome outcome;
    outcome.request_id = shared->id;
    outcome.status = sent.status();
    outcome.refusal = "reply-lost";
    settle_forward(*shared, shard_index, outcome);
    return;
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterFrontEnd::settle_forward(Forward& state, std::size_t shard_index,
                                     const ingress::RemoteOutcome& outcome) {
  // A shard that answered — even with a refusal — is alive; only a lost
  // reply (or an unreachable endpoint) marks it unhealthy.
  const bool lost = outcome.refusal == "reply-lost";
  const bool shutting_down = shutting_down_.load(std::memory_order_acquire);
  if (!shutting_down) record_health(shard_index, state.admission, !lost);

  if (lost && config_.failover && !shutting_down) {
    const TimePoint now = network_->clock().now();

    // Pick the failover target against the CURRENT topology. A same-
    // epoch loss uses the precomputed ring replica; after a flip the
    // arcs may have moved or the fallback may be draining, so the
    // target is re-resolved from the live ring.
    std::optional<std::size_t> target;
    bool gated = false;  // a candidate exists but its window is open
    broker::CircuitBreaker::Admission admission =
        broker::CircuitBreaker::Admission::kAllow;
    std::uint64_t routed_epoch = state.epoch;
    {
      std::shared_lock lock(topology_mutex_);
      std::optional<std::size_t> candidate;
      const std::uint64_t current_epoch =
          epoch_.load(std::memory_order_acquire);
      if (state.epoch != current_epoch) {
        const std::size_t owner = ring_.owner(state.session);
        if (owner != shard_index) {
          candidate = owner;
        } else {
          const std::size_t replica = ring_.replica(state.session);
          if (replica != shard_index) candidate = replica;
        }
      } else if (state.fallback.has_value() &&
                 *state.fallback != shard_index) {
        candidate = *state.fallback;
      }
      if (candidate.has_value() &&
          shards_[*candidate]->state.load(std::memory_order_acquire) ==
              ShardState::kActive) {
        broker::CircuitBreaker::AdmitResult admit =
            shards_[*candidate]->breaker->admit(now);
        if (admit.admission == broker::CircuitBreaker::Admission::kReject) {
          gated = true;
        } else {
          target = candidate;
          admission = admit.admission;
          routed_epoch = current_epoch;
        }
      }
    }

    if (target.has_value() || gated) {
      // Deadline accounting (PR 9 bugfix): the wait on the lost reply
      // already spent part of the client's budget — the replica gets
      // only the remainder, and a spent budget is refused instead of
      // producing a reply the client can no longer use.
      std::optional<Duration> remaining = state.deadline;
      if (state.deadline.has_value()) {
        const Duration elapsed = now - state.sent_at;
        if (elapsed >= *state.deadline) {
          refuse(state.client, state.id,
                 Timeout("deadline spent waiting on shard " +
                         std::to_string(shard_index) + "'s lost reply"),
                 "deadline");
          return;
        }
        remaining = *state.deadline - elapsed;
      }
      if (!target.has_value()) {  // gated: both windows are open
        refuse(state.client, state.id,
               Unavailable("shard " + std::to_string(shard_index) +
                           " lost the reply and the failover shard's "
                           "health window is open"),
               "shard-unavailable");
        return;
      }
      failovers_.fetch_add(1, std::memory_order_relaxed);
      Forward retry = std::move(state);
      retry.fallback.reset();
      retry.admission = admission;
      retry.deadline = remaining;
      retry.epoch = routed_epoch;
      // Resume-before-retry (PR 10): when a checkpoint of this session
      // is cached, it is imported on the failover target BEFORE the
      // retried request forwards, so sequenced work resumes from where
      // the dead owner left off instead of restarting. No checkpoint
      // (or a lost ship) degrades to the PR-8 cold retry.
      resume_then_forward(std::move(retry), *target);
      return;
    }
    // No candidate at all (single-shard ring): fall through and report
    // the loss as-is.
  }
  wire::Reply reply;
  reply.request_id = state.id;
  reply.code = outcome.status.code();
  reply.refusal = outcome.refusal;
  reply.message =
      outcome.status.ok() ? outcome.payload : outcome.status.message();
  reply.commands = outcome.commands;
  send_reply(state.client, std::move(reply));
  // Checkpoint cadence: only COMPLETED requests advance a session's
  // counter (refusals and losses leave no new state worth capturing).
  if (!shutting_down && !lost && outcome.status.ok() &&
      checkpoint_interval_ > 0) {
    maybe_checkpoint(state.session, shard_index);
  }
}

void ClusterFrontEnd::resume_then_forward(Forward state,
                                          std::size_t shard_index) {
  // Skip the ship when the target already holds this (or a newer)
  // version live — it captured the checkpoint itself, or a prior
  // resume landed it there. Re-importing would only redo work the
  // shard has already applied.
  std::optional<std::pair<std::int64_t, std::string>> checkpoint;
  {
    std::lock_guard lock(checkpoint_mutex_);
    auto it = checkpoints_.find(state.session);
    if (it != checkpoints_.end() && it->second.version > 0 &&
        !(it->second.resumed_shard == shard_index &&
          it->second.resumed_version >= it->second.version)) {
      checkpoint = {it->second.version, it->second.state_text};
    }
  }
  if (!checkpoint.has_value()) {
    forward(std::move(state), shard_index);
    return;
  }
  resumes_shipped_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t version = checkpoint->first;
  auto shared = std::make_shared<Forward>(std::move(state));
  ship_session_state(
      shared->session, version, checkpoint->second, shard_index,
      /*resume=*/true, [this, shared, shard_index, version](bool acked) {
        if (acked) {
          resumes_completed_.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(checkpoint_mutex_);
          SessionCheckpoint& entry = checkpoints_[shared->session];
          if (entry.resumed_shard != shard_index ||
              entry.resumed_version < version) {
            entry.resumed_shard = shard_index;
            entry.resumed_version = version;
          }
        }
        // A lost ship still forwards: the cold retry is strictly better
        // than refusing, and the receiver's version gate makes a late
        // duplicate import harmless.
        forward(std::move(*shared), shard_index);
      });
}

void ClusterFrontEnd::maybe_checkpoint(const std::string& session,
                                       std::size_t owner) {
  bool capture = false;
  {
    std::lock_guard lock(checkpoint_mutex_);
    SessionCheckpoint& entry = checkpoints_[session];
    ++entry.completed;
    if (entry.completed %
                static_cast<std::uint64_t>(checkpoint_interval_) ==
            0 &&
        !entry.capture_in_flight) {
      entry.capture_in_flight = true;
      capture = true;
    }
  }
  if (capture) checkpoint_session(session, owner);
}

void ClusterFrontEnd::checkpoint_session(const std::string& session,
                                         std::size_t owner) {
  std::shared_ptr<ingress::IngressClient> client;
  std::size_t replica = owner;
  {
    std::shared_lock lock(topology_mutex_);
    if (owner < shards_.size()) client = shards_[owner]->client;
    replica = ring_.replica(session);
  }
  auto abort_capture = [this, &session] {
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(checkpoint_mutex_);
    checkpoints_[session].capture_in_flight = false;
  };
  if (client == nullptr) {
    abort_capture();
    return;
  }
  wire::Request request;
  Result<std::uint64_t> sent = client->call(
      "checkpoint/" + session, std::move(request),
      [this, session, owner, replica](const ingress::RemoteOutcome& outcome) {
        if (shutting_down_.load(std::memory_order_acquire)) return;
        if (!outcome.status.ok()) {
          checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(checkpoint_mutex_);
          checkpoints_[session].capture_in_flight = false;
          return;
        }
        checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
        std::int64_t version = 0;
        {
          std::lock_guard lock(checkpoint_mutex_);
          SessionCheckpoint& entry = checkpoints_[session];
          entry.state_text = outcome.payload;
          version = ++entry.version;
          entry.capture_in_flight = false;
          // The capture SOURCE holds this state live by construction —
          // a later reroute/failover to it must not re-import.
          entry.resumed_shard = owner;
          entry.resumed_version = version;
        }
        // Ship to the ring replica so a failover can resume there. A
        // single-shard ring has nowhere to ship; the cache still powers
        // a later re-resolved failover.
        if (replica == owner) return;
        ship_session_state(session, version, outcome.payload, replica,
                           /*resume=*/false, [this](bool acked) {
                             (acked ? checkpoint_acks_
                                    : checkpoint_failures_)
                                 .fetch_add(1, std::memory_order_relaxed);
                           });
      });
  if (!sent.ok()) abort_capture();
}

void ClusterFrontEnd::ship_session_state(const std::string& session,
                                         std::int64_t version,
                                         const std::string& state_text,
                                         std::size_t index, bool resume,
                                         std::function<void(bool)> done) {
  auto settle = [done = std::move(done)](bool acked) {
    if (done != nullptr) done(acked);
  };
  std::shared_ptr<ingress::IngressClient> client;
  {
    std::shared_lock lock(topology_mutex_);
    if (index < shards_.size()) client = shards_[index]->client;
  }
  Result<model::Value> state = model::parse_value(state_text);
  if (client == nullptr || !state.ok()) {
    settle(false);
    return;
  }
  auto pair = [](std::string key, model::Value value) {
    model::ValueList entry;
    entry.push_back(model::Value(std::move(key)));
    entry.push_back(std::move(value));
    return model::Value(std::move(entry));
  };
  model::ValueList envelope;
  envelope.push_back(pair("session", model::Value(session)));
  envelope.push_back(pair("version", model::Value(version)));
  envelope.push_back(pair("resume", model::Value(resume)));
  envelope.push_back(pair("state", std::move(state).value()));
  wire::Request request;
  request.body = model::Value(std::move(envelope));
  Result<std::uint64_t> sent = client->call(
      "replicate/session-state", std::move(request),
      [this, settle](const ingress::RemoteOutcome& outcome) {
        if (shutting_down_.load(std::memory_order_acquire)) return;
        settle(outcome.status.ok());
      });
  if (!sent.ok()) settle(false);
}

void ClusterFrontEnd::warm_joiner_sessions(std::size_t index) {
  struct Cached {
    std::string session;
    std::int64_t version;
    std::string text;
  };
  std::vector<Cached> cached;
  {
    std::lock_guard lock(checkpoint_mutex_);
    for (const auto& [session, entry] : checkpoints_) {
      if (entry.version > 0) {
        cached.push_back(Cached{session, entry.version, entry.state_text});
      }
    }
  }
  for (Cached& entry : cached) {
    ship_session_state(entry.session, entry.version, entry.text, index,
                       /*resume=*/false, nullptr);
  }
}

std::int64_t ClusterFrontEnd::checkpoint_version(
    std::string_view session) const {
  std::lock_guard lock(checkpoint_mutex_);
  auto it = checkpoints_.find(session);
  return it == checkpoints_.end() ? 0 : it->second.version;
}

void ClusterFrontEnd::handle_query(const net::Message& message,
                                   const ingress::RouteParams& params) {
  Result<wire::Request> decoded = wire::decode_request(message.payload);
  if (!decoded.ok()) {
    refuse(message.from, 0, decoded.status(),
           wire::is_version_mismatch(decoded.status()) ? "bad-version"
                                                       : "malformed");
    return;
  }
  const std::uint64_t id = decoded.value().request_id;
  const std::string what(params.get("what"));
  query_fanouts_.fetch_add(1, std::memory_order_relaxed);

  // Fan out to every ACTIVE shard (joiners aren't serving yet, leavers
  // already left the ring) and merge: the join fires the client reply
  // when the last downstream outcome (success, refusal or loss) lands.
  struct Target {
    std::size_t index;
    std::shared_ptr<ingress::IngressClient> client;
  };
  std::vector<Target> targets;
  {
    std::shared_lock lock(topology_mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i]->state.load(std::memory_order_acquire) ==
              ShardState::kActive &&
          shards_[i]->client != nullptr) {
        targets.push_back(Target{i, shards_[i]->client});
      }
    }
  }
  if (targets.empty()) {
    refuse(message.from, id, Unavailable("no active shard to query"),
           "shard-unavailable");
    return;
  }

  struct Join {
    std::mutex mutex;
    std::size_t remaining = 0;
    std::vector<std::pair<std::size_t, std::string>> parts;
  };
  auto join = std::make_shared<Join>();
  join->remaining = targets.size();
  join->parts.resize(targets.size());
  const std::string to = message.from;

  auto settle = [this, join, to, id](std::size_t slot, std::size_t shard,
                                     std::string part) {
    bool last = false;
    {
      std::lock_guard lock(join->mutex);
      join->parts[slot] = {shard, std::move(part)};
      last = --join->remaining == 0;
    }
    if (!last) return;
    wire::Reply reply;
    reply.request_id = id;
    for (const auto& [index, text] : join->parts) {
      reply.message += "=== shard " + std::to_string(index) + " ===\n";
      reply.message += text;
      reply.message += "\n";
    }
    send_reply(to, std::move(reply));
  };

  for (std::size_t slot = 0; slot < targets.size(); ++slot) {
    const std::size_t shard = targets[slot].index;
    Result<std::uint64_t> sent = targets[slot].client->query(
        what, [settle, slot, shard](const ingress::RemoteOutcome& outcome) {
          settle(slot, shard,
                 outcome.status.ok()
                     ? outcome.payload
                     : "<" + std::string(outcome.refusal.empty()
                                             ? "error"
                                             : outcome.refusal) +
                           ">");
        });
    if (!sent.ok()) settle(slot, shard, "<unreachable>");
  }
}

Status ClusterFrontEnd::update_model(const model::Model& next_model) {
  model::ChangeList changes;
  model::Value encoded;
  std::uint64_t version = 0;
  {
    std::lock_guard lock(model_mutex_);
    changes = model::diff(authoritative_, next_model);
    if (changes.empty()) return Status::Ok();
    encoded = model::encode_changes(changes);
    // The bytes a full-model push would have cost vs what the delta
    // actually costs — the savings BENCH_8 reports.
    full_bytes_.fetch_add(model::serialize_model(next_model).size(),
                          std::memory_order_relaxed);
    delta_bytes_.fetch_add(encoded.to_text().size(),
                           std::memory_order_relaxed);
    deltas_shipped_.fetch_add(1, std::memory_order_relaxed);
    authoritative_ = next_model.clone();
    version = model_version_.load(std::memory_order_relaxed) + 1;
    model_version_.store(version, std::memory_order_release);
  }

  struct Target {
    std::size_t index;
    std::shared_ptr<ingress::IngressClient> client;
    ShardState state;
    bool stale;
  };
  std::vector<Target> targets;
  {
    std::shared_lock lock(topology_mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      targets.push_back(Target{
          i, shards_[i]->client,
          shards_[i]->state.load(std::memory_order_acquire),
          shards_[i]->stale.load(std::memory_order_acquire)});
    }
  }

  Status first_failure = Status::Ok();
  for (const Target& t : targets) {
    if (t.state == ShardState::kRetired || t.client == nullptr) continue;
    if (t.state == ShardState::kDraining) continue;  // retiring: no new state
    if (t.stale || t.state == ShardState::kJoining) {
      // A diverged (or still-warming) replica can't apply a delta that
      // assumes the previous baseline — the full-sync fallback fires
      // instead. This is the PR-9 bugfix: the old code shipped nothing
      // and the shard diverged permanently.
      kick_full_sync(t.index);
      continue;
    }
    wire::Request request;
    request.body = encoded;
    const std::size_t index = t.index;
    Result<std::uint64_t> sent = t.client->call(
        "replicate/model-diff", std::move(request),
        [this, index, version](const ingress::RemoteOutcome& outcome) {
          // Teardown stragglers must not touch shards_ mid-clear.
          if (shutting_down_.load(std::memory_order_acquire)) return;
          if (outcome.status.ok()) {
            replication_acks_.fetch_add(1, std::memory_order_relaxed);
            std::shared_lock lock(topology_mutex_);
            raise_acked_version(shards_[index]->acked_version, version);
          } else {
            // Send failed, nacked, or the reply was lost: the replica
            // may have missed this delta — stop shipping deltas it can
            // no longer apply and schedule a full-model repair.
            replication_failures_.fetch_add(1, std::memory_order_relaxed);
            mark_stale(index);
          }
        });
    if (!sent.ok()) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      mark_stale(index);
      if (first_failure.ok()) first_failure = sent.status();
    }
  }
  return first_failure;
}

void ClusterFrontEnd::kick_full_sync(std::size_t index) {
  std::shared_ptr<ingress::IngressClient> client;
  {
    std::shared_lock lock(topology_mutex_);
    Shard& shard = *shards_[index];
    const ShardState state = shard.state.load(std::memory_order_acquire);
    if (state == ShardState::kRetired || state == ShardState::kDraining ||
        shard.client == nullptr) {
      return;
    }
    // At most one full ship in flight per shard; the ack (or its loss)
    // re-arms the next attempt.
    if (shard.full_sync_in_flight.exchange(true)) return;
    client = shard.client;
  }

  wire::Request request;
  std::uint64_t version = 0;
  {
    // Serialize and stamp the version under the same lock so the text
    // and the version always agree.
    std::lock_guard lock(model_mutex_);
    request.text = model::serialize_model(authoritative_);
    version = model_version_.load(std::memory_order_relaxed);
  }

  full_syncs_shipped_.fetch_add(1, std::memory_order_relaxed);
  Result<std::uint64_t> sent = client->call(
      "replicate/model-full", std::move(request),
      [this, index, version](const ingress::RemoteOutcome& outcome) {
        if (shutting_down_.load(std::memory_order_acquire)) return;
        bool warmed = false;
        {
          std::shared_lock lock(topology_mutex_);
          Shard& shard = *shards_[index];
          shard.full_sync_in_flight.store(false, std::memory_order_release);
          if (outcome.status.ok()) {
            full_sync_acks_.fetch_add(1, std::memory_order_relaxed);
            raise_acked_version(shard.acked_version, version);
            // Only an ack at the CURRENT version clears staleness — a
            // late ack of an older ship must not mask a newer miss.
            if (version ==
                model_version_.load(std::memory_order_acquire)) {
              shard.stale.store(false, std::memory_order_release);
              if (shard.state.load(std::memory_order_acquire) ==
                  ShardState::kJoining) {
                warmed = true;
              }
            }
          } else {
            replication_failures_.fetch_add(1, std::memory_order_relaxed);
            // Stays stale; the next maintain() retries.
          }
        }
        if (warmed) {
          // Warm the joiner's checkpoint staging table before it takes
          // ring arcs: a failover targeting it right after the splice
          // must find session state already staged.
          warm_joiner_sessions(index);
          complete_join(index);
        }
      });
  if (!sent.ok()) {
    replication_failures_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(topology_mutex_);
    shards_[index]->full_sync_in_flight.store(false,
                                              std::memory_order_release);
  }
}

Result<std::size_t> ClusterFrontEnd::join(const std::string& endpoint) {
  std::size_t index = 0;
  {
    std::unique_lock lock(topology_mutex_);
    for (const auto& shard : shards_) {
      if (shard->endpoint == endpoint &&
          shard->state.load(std::memory_order_acquire) !=
              ShardState::kRetired) {
        return InvalidArgument("endpoint '" + endpoint +
                               "' already serves shard traffic");
      }
    }
    index = shards_.size();
    auto shard = std::make_unique<Shard>();
    shard->endpoint = endpoint;
    Result<std::unique_ptr<ingress::IngressClient>> client =
        ingress::IngressClient::attach(*network_, endpoint,
                                       downstream_options(config_, index));
    if (!client.ok()) return client.status();
    shard->client = std::move(client).value();
    shard->breaker = std::make_unique<broker::CircuitBreaker>(config_.health);
    shard->state.store(ShardState::kJoining, std::memory_order_release);
    shard->stale.store(true, std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
  joins_started_.fetch_add(1, std::memory_order_relaxed);
  // Warm-up: the full-model ship; its ack completes the join.
  kick_full_sync(index);
  return index;
}

void ClusterFrontEnd::complete_join(std::size_t index) {
  double fraction = 0.0;
  {
    std::unique_lock lock(topology_mutex_);
    Shard& shard = *shards_[index];
    ShardState expected = ShardState::kJoining;
    if (!shard.state.compare_exchange_strong(expected, ShardState::kActive)) {
      return;  // lost a race with another completion (or a teardown)
    }
    const std::vector<ShardRing::Arc> arcs = ring_.add_shard(index);
    fraction = ShardRing::arcs_fraction(arcs);
    // The flip: from this epoch on, moved-arc sessions route to the new
    // shard; forwards stamped with older epochs re-resolve on failover.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  last_rebalance_fraction_.store(fraction, std::memory_order_release);
  joins_completed_.fetch_add(1, std::memory_order_relaxed);
}

Status ClusterFrontEnd::leave(std::size_t index) {
  std::shared_ptr<ingress::IngressClient> client;
  double fraction = 0.0;
  {
    std::unique_lock lock(topology_mutex_);
    if (index >= shards_.size()) {
      return InvalidArgument("no shard " + std::to_string(index));
    }
    Shard& shard = *shards_[index];
    if (shard.state.load(std::memory_order_acquire) != ShardState::kActive) {
      return FailedPrecondition("shard " + std::to_string(index) +
                                " is not active");
    }
    if (ring_.shards() <= 1) {
      return FailedPrecondition(
          "cannot retire the last shard: every key needs an owner");
    }
    const std::vector<ShardRing::Arc> arcs = ring_.remove_shard(index);
    fraction = ShardRing::arcs_fraction(arcs);
    shard.state.store(ShardState::kDraining, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    client = shard.client;
  }
  last_rebalance_fraction_.store(fraction, std::memory_order_release);
  leaves_started_.fetch_add(1, std::memory_order_relaxed);
  // Close OUTSIDE the ring flip: new submits already route elsewhere;
  // closing refuses any straggler routed under the old epoch (it fails
  // over to the new owner), while pending forwards keep settling on the
  // old route.
  client->close();
  if (client->pending() == 0) retire(index);
  return Status::Ok();
}

void ClusterFrontEnd::retire(std::size_t index) {
  std::shared_ptr<ingress::IngressClient> client;
  {
    std::unique_lock lock(topology_mutex_);
    Shard& shard = *shards_[index];
    ShardState expected = ShardState::kDraining;
    if (!shard.state.compare_exchange_strong(expected,
                                             ShardState::kRetired)) {
      return;  // someone else retired it
    }
    client = std::move(shard.client);
    shard.client = nullptr;
  }
  leaves_completed_.fetch_add(1, std::memory_order_relaxed);
  // The client's destructor runs outside the lock (it unbinds its
  // endpoint and would resolve any stragglers — there are none, the
  // drain condition was pending() == 0).
  client.reset();
}

void ClusterFrontEnd::mark_stale(std::size_t index) {
  std::shared_lock lock(topology_mutex_);
  if (index >= shards_.size()) return;
  if (!shards_[index]->stale.exchange(true, std::memory_order_acq_rel)) {
    stale_marks_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ClusterFrontEnd::maintain() {
  struct Entry {
    std::size_t index;
    std::shared_ptr<ingress::IngressClient> client;
    ShardState state;
    bool stale;
    bool syncing;
  };
  std::vector<Entry> snapshot;
  {
    std::shared_lock lock(topology_mutex_);
    snapshot.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      snapshot.push_back(
          Entry{i, shards_[i]->client,
                shards_[i]->state.load(std::memory_order_acquire),
                shards_[i]->stale.load(std::memory_order_acquire),
                shards_[i]->full_sync_in_flight.load(
                    std::memory_order_acquire)});
    }
  }
  std::size_t resolved = 0;
  // Expiry callbacks re-enter forward()/settle_forward(); no lock held.
  for (const Entry& entry : snapshot) {
    if (entry.client != nullptr) resolved += entry.client->expire_overdue();
  }
  for (const Entry& entry : snapshot) {
    if (entry.state == ShardState::kDraining && entry.client != nullptr &&
        entry.client->pending() == 0) {
      retire(entry.index);
    } else if ((entry.state == ShardState::kActive ||
                entry.state == ShardState::kJoining) &&
               entry.stale && !entry.syncing) {
      kick_full_sync(entry.index);
    }
  }
  return resolved;
}

void ClusterFrontEnd::send_reply(const std::string& to, wire::Reply reply) {
  // Reentrant sends are legal on the simulated bus (handlers run outside
  // the network lock), so replies go straight out from the delivery
  // thread — the front-end has no pipeline of its own to keep clear.
  Status sent = endpoint_->send(to, std::string(wire::kReplyTopic),
                                wire::encode_reply(reply));
  if (sent.ok()) {
    replies_.fetch_add(1, std::memory_order_relaxed);
  } else {
    reply_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ClusterFrontEnd::refuse(const std::string& to, std::uint64_t request_id,
                             const Status& status, std::string refusal) {
  if (refusal.empty()) refusal = std::string(wire::classify_refusal(status));
  refused_.fetch_add(1, std::memory_order_relaxed);
  wire::Reply reply;
  reply.request_id = request_id;
  reply.code = status.code();
  reply.refusal = std::move(refusal);
  reply.message = status.message();
  send_reply(to, std::move(reply));
}

void ClusterFrontEnd::record_health(
    std::size_t shard_index, broker::CircuitBreaker::Admission admission,
    bool success) {
  broker::CircuitBreaker::Transition transition;
  {
    std::shared_lock lock(topology_mutex_);
    transition = shards_[shard_index]->breaker->on_result(
        admission, success, network_->clock().now());
  }
  if (transition == broker::CircuitBreaker::Transition::kOpened) {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

ClusterFrontEnd::Stats ClusterFrontEnd::stats() const {
  Stats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.rerouted = rerouted_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.replies = replies_.load(std::memory_order_relaxed);
  stats.reply_failures = reply_failures_.load(std::memory_order_relaxed);
  stats.query_fanouts = query_fanouts_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.deltas_shipped = deltas_shipped_.load(std::memory_order_relaxed);
  stats.delta_bytes = delta_bytes_.load(std::memory_order_relaxed);
  stats.full_bytes = full_bytes_.load(std::memory_order_relaxed);
  stats.replication_acks =
      replication_acks_.load(std::memory_order_relaxed);
  stats.replication_failures =
      replication_failures_.load(std::memory_order_relaxed);
  stats.stale_marks = stale_marks_.load(std::memory_order_relaxed);
  stats.full_syncs_shipped =
      full_syncs_shipped_.load(std::memory_order_relaxed);
  stats.full_sync_acks = full_sync_acks_.load(std::memory_order_relaxed);
  stats.joins_started = joins_started_.load(std::memory_order_relaxed);
  stats.joins_completed = joins_completed_.load(std::memory_order_relaxed);
  stats.leaves_started = leaves_started_.load(std::memory_order_relaxed);
  stats.leaves_completed = leaves_completed_.load(std::memory_order_relaxed);
  stats.checkpoints_taken = checkpoints_taken_.load(std::memory_order_relaxed);
  stats.checkpoint_acks = checkpoint_acks_.load(std::memory_order_relaxed);
  stats.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  stats.resumes_shipped = resumes_shipped_.load(std::memory_order_relaxed);
  stats.resumes_completed =
      resumes_completed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mdsm::cluster
