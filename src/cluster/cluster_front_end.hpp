// The cluster front-end (PR 8, elastic since PR 9): one well-known
// ingress endpoint fanning a consistent-hash-sharded fleet of
// ShardNodes out behind it.
//
// Routing: the submit route's {session} capture is the shard key — the
// ShardRing maps it onto the owning shard, whose IngressServer executes
// the request. Clients keep speaking the PR-7 wire protocol to ONE
// endpoint; the front-end forwards via per-shard IngressClients with
// the original "<client>#<id>" identity stamped as forwarded_for, so
// traces and the shard-side dedup ledger see one request no matter how
// many hops (or retries) it took.
//
// Health/failover: every shard gets a PR-4 sliding-window breaker fed
// by forwarding outcomes (a lost reply = failure; a typed refusal means
// the shard is alive and counts as success). A tripped window reroutes
// the session's traffic to its ring-designated replica shard at
// admission time — gated through the REPLICA's breaker too, so a
// tripped replica is never dogpiled; both windows open refuses
// "shard-unavailable". An individual lost reply fails over the one
// request to the replica with the elapsed wait deducted from its
// deadline budget (a spent deadline refuses "deadline" instead of
// delivering a reply the client can no longer use). Failover is
// at-most-once end-to-end: the replica run is a fresh execution, and
// exactly-once refers to the client-facing callback ledger (one
// terminal outcome per request, never two).
//
// Replication: update_model() diffs the new authoritative middleware
// model against the current one and ships the model::diff ChangeList —
// not full model text — to every current shard's "replicate/model-diff"
// route, tracking delta vs full-model bytes (the savings BENCH_8
// reports). A shard whose delta send fails or is nacked is marked
// STALE: it stops receiving deltas (they would apply against the wrong
// baseline) and instead gets a full-model ship ("replicate/model-full")
// on the next maintain()/update_model() cycle, versioned so a late ack
// of an old full ship never clears staleness spuriously.
//
// Elasticity (PR 9): join(endpoint) admits a new shard — it attaches a
// downstream client, warms the newcomer with the same full-model
// machinery (stale until the CURRENT model version is acked), and only
// then splices it into the ring, bumping the topology epoch. leave()
// removes a shard from the ring immediately (epoch bump), closes its
// client so no new forwards can race in, lets the pending forwards
// settle on the old route, and retires the shard once they have. Every
// routing decision happens under the topology lock against exactly one
// ring state and is stamped with its epoch; a failover from an older
// epoch re-resolves its target against the current ring — so no
// session ever has two live owners.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "broker/invocation_policy.hpp"
#include "cluster/shard_ring.hpp"
#include "common/status.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "model/model.hpp"
#include "net/network.hpp"

namespace mdsm::cluster {

struct ClusterConfig {
  std::string endpoint = "cluster";  ///< the fleet's public endpoint
  std::size_t virtual_nodes = 64;    ///< ring points per shard
  /// Per-shard health window (PR-4 machinery). The defaults trip after
  /// half of the last 16 forwards are lost, with min_samples guarding
  /// cold shards and a cooldown before half-open probes retest.
  broker::BreakerConfig health{.window = 16,
                               .min_samples = 4,
                               .failure_threshold = 0.5,
                               .cooldown = std::chrono::milliseconds(200),
                               .half_open_probes = 1};
  /// Reply budget per downstream hop before a forward counts as lost.
  Duration downstream_reply_timeout = std::chrono::milliseconds(500);
  /// Retries each downstream client performs itself before reporting
  /// reply-lost (shard-side dedup keeps them idempotent).
  int downstream_retry_budget = 0;
  /// Re-forward a lost request to the replica shard once (false: report
  /// reply-lost to the client as-is).
  bool failover = true;
};

class ClusterFrontEnd {
 public:
  /// A shard's place in the join → serve → drain → gone lifecycle.
  enum class ShardState {
    kJoining,   ///< warming via full-model ship; not in the ring yet
    kActive,    ///< in the ring, serving its key-arcs
    kDraining,  ///< out of the ring; pending forwards still settling
    kRetired,   ///< drained; client released, slot kept for index stability
  };

  /// Bind the front-end on `network`, forwarding to the shard ingress
  /// endpoints in `shard_endpoints` (index order = ring shard index).
  /// `authoritative_model` seeds the replication baseline — it must be
  /// the middleware model every shard was launched from.
  static Result<std::unique_ptr<ClusterFrontEnd>> attach(
      net::Network& network, const model::Model& authoritative_model,
      std::vector<std::string> shard_endpoints, ClusterConfig config = {});

  ~ClusterFrontEnd();
  ClusterFrontEnd(const ClusterFrontEnd&) = delete;
  ClusterFrontEnd& operator=(const ClusterFrontEnd&) = delete;

  [[nodiscard]] const std::string& endpoint_name() const noexcept {
    return endpoint_name_;
  }
  /// The ring itself. NOT synchronized against concurrent join/leave —
  /// single-threaded introspection (tests, examples) only; concurrent
  /// callers should use shard_for().
  [[nodiscard]] const ShardRing& ring() const noexcept { return ring_; }
  /// Slots ever allocated, retired ones included (indices are stable).
  [[nodiscard]] std::size_t shard_count() const;
  /// Shards currently in the ring.
  [[nodiscard]] std::size_t active_shard_count() const;
  [[nodiscard]] ShardState shard_state(std::size_t index) const;
  /// Topology epoch: bumps on every ring change (join completion,
  /// leave). Forwards are stamped with it so stale failovers re-resolve.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Fraction of the keyspace the LAST topology change moved (the
  /// migration bound the bench asserts: ~1/N per single join/leave).
  [[nodiscard]] double last_rebalance_fraction() const noexcept {
    return last_rebalance_fraction_.load(std::memory_order_acquire);
  }
  /// The shard currently serving `session` (after health rerouting).
  [[nodiscard]] std::size_t shard_for(std::string_view session) const;

  /// Begin admitting a new shard serving `endpoint`: attach a
  /// downstream client, start the full-model warm-up, and splice it
  /// into the ring once the warm-up acks at the current model version.
  /// Returns the new shard's index immediately; completion is
  /// observable via shard_state() / stats().joins_completed.
  Result<std::size_t> join(const std::string& endpoint);

  /// Begin retiring shard `index`: remove it from the ring (new submits
  /// for its arcs route to the survivors at the bumped epoch), close
  /// its downstream client, and retire it once every pending forward
  /// has settled on the old route. Refuses to retire the last active
  /// shard. Completion is observable via shard_state() /
  /// stats().leaves_completed.
  Status leave(std::size_t index);

  /// Replace the authoritative middleware model: diff, ship the
  /// ChangeList to every current shard (stale shards get a full-model
  /// ship instead), adopt `next_model` as the new baseline. Returns the
  /// first immediate send failure (delivery outcomes arrive
  /// asynchronously and land in stats()).
  Status update_model(const model::Model& next_model);

  /// Housekeeping for simulation drivers: expire overdue downstream
  /// forwards (triggering retries/failover), retire drained leavers,
  /// and re-ship the full model to stale shards. Returns outcomes
  /// resolved.
  std::size_t maintain();

  struct Stats {
    std::uint64_t received = 0;    ///< wire messages from clients
    std::uint64_t forwarded = 0;   ///< submits relayed to a shard
    std::uint64_t rerouted = 0;    ///< sent to the replica: breaker open
    std::uint64_t failovers = 0;   ///< re-forwarded after a lost reply
    std::uint64_t refused = 0;     ///< refused at the front-end itself
    std::uint64_t replies = 0;     ///< replies returned to clients
    std::uint64_t reply_failures = 0;
    std::uint64_t query_fanouts = 0;  ///< query/* broadcast to all shards
    std::uint64_t breaker_trips = 0;  ///< health windows opened
    // Replication ledger:
    std::uint64_t deltas_shipped = 0;  ///< update_model() calls that diffed
    std::uint64_t delta_bytes = 0;     ///< ChangeList bytes actually sent
    std::uint64_t full_bytes = 0;      ///< full-model bytes NOT sent
    std::uint64_t replication_acks = 0;
    std::uint64_t replication_failures = 0;
    // Full-sync / staleness ledger (PR 9):
    std::uint64_t stale_marks = 0;       ///< shards marked divergent
    std::uint64_t full_syncs_shipped = 0;  ///< full-model ships sent
    std::uint64_t full_sync_acks = 0;      ///< ...that the shard accepted
    // Elasticity ledger (PR 9):
    std::uint64_t joins_started = 0;
    std::uint64_t joins_completed = 0;   ///< warm shard spliced into ring
    std::uint64_t leaves_started = 0;
    std::uint64_t leaves_completed = 0;  ///< drained shard retired
    // Session-state replication ledger (PR 10):
    std::uint64_t checkpoints_taken = 0;   ///< captures pulled from owners
    std::uint64_t checkpoint_acks = 0;     ///< replica staged the ship
    std::uint64_t checkpoint_failures = 0;  ///< capture or ship lost/nacked
    std::uint64_t resumes_shipped = 0;    ///< failovers that found a ckpt
    std::uint64_t resumes_completed = 0;  ///< ...whose import acked
  };
  [[nodiscard]] Stats stats() const;

  /// Version of the last checkpoint captured for `session` (0 = none) —
  /// exposed for tests.
  [[nodiscard]] std::int64_t checkpoint_version(std::string_view session) const;

 private:
  /// Everything one forwarded submit needs to fail over and reply.
  struct Forward {
    std::string client;  ///< original sender endpoint
    std::uint64_t id = 0;  ///< original request id (reply correlation)
    std::string session;
    std::string dsml;
    std::string text;
    std::optional<Duration> deadline;  ///< REMAINING budget this attempt
    bool high_priority = false;
    std::optional<std::size_t> fallback;  ///< replica to try on loss
    /// Verdict the target shard's breaker issued for this attempt
    /// (probes must retire their probe slot on settle).
    broker::CircuitBreaker::Admission admission =
        broker::CircuitBreaker::Admission::kAllow;
    /// Topology epoch the routing decision was made under; a failover
    /// after a flip re-resolves its target against the current ring.
    std::uint64_t epoch = 0;
    /// When this attempt left the front-end (network clock), so a
    /// failover can deduct the wait already spent from the deadline.
    TimePoint sent_at{};
  };

  struct Shard {
    std::string endpoint;
    /// breaker declared BEFORE client: the client's destructor fires
    /// straggler callbacks that feed the health window, so the breaker
    /// must outlive it.
    std::unique_ptr<broker::CircuitBreaker> breaker;
    /// shared_ptr so in-flight forwards and maintenance snapshots keep
    /// the client alive across a concurrent retire; null once retired.
    std::shared_ptr<ingress::IngressClient> client;
    std::atomic<ShardState> state{ShardState::kActive};
    /// Replica diverged (missed/nacked a delta, or still warming):
    /// deltas are withheld; the full model re-ships until the current
    /// version acks.
    std::atomic<bool> stale{false};
    std::atomic<bool> full_sync_in_flight{false};
    /// Highest model version this shard acked (delta or full).
    std::atomic<std::uint64_t> acked_version{0};
  };

  ClusterFrontEnd(net::Network& network, model::Model authoritative);

  void on_message(const net::Message& message);
  void handle_submit(const net::Message& message,
                     const ingress::RouteParams& params);
  void handle_query(const net::Message& message,
                    const ingress::RouteParams& params);
  void forward(Forward state, std::size_t shard_index);
  /// Forward `state` to `shard_index`, first importing the session's
  /// cached checkpoint there if that shard is not already known to hold
  /// it live. Used by both resume paths: settle-time failover and
  /// admission-time reroute (breaker open on the owner).
  void resume_then_forward(Forward state, std::size_t shard_index);
  /// Resolve one downstream outcome: fail over, or reply to the client.
  void settle_forward(Forward& state, std::size_t shard_index,
                      const ingress::RemoteOutcome& outcome);
  /// Ship the current full model to `index` (at most one in flight per
  /// shard). Clears staleness — and completes a pending join — when the
  /// ack matches the current model version.
  void kick_full_sync(std::size_t index);
  /// Splice a warmed joiner into the ring (unique topology lock).
  void complete_join(std::size_t index);
  /// Release a drained leaver's client and mark the slot retired.
  void retire(std::size_t index);
  void mark_stale(std::size_t index);
  /// Cadence hook (PR 10): count a completed sequenced request for
  /// `session` and, when the model-driven interval fires, pull a fresh
  /// checkpoint from the owning shard.
  void maybe_checkpoint(const std::string& session, std::size_t owner);
  /// Capture `session`'s state from shard `owner` ("checkpoint/{session}"),
  /// version-stamp and cache it, then ship it to the ring replica.
  void checkpoint_session(const std::string& session, std::size_t owner);
  /// Ship a cached checkpoint to shard `index` via
  /// "replicate/session-state". `resume` asks the receiver to import it
  /// into its live platform (the failover path); false merely stages it.
  /// `done(acked)` fires once the ship settles (immediately on a send
  /// failure); it may be null.
  void ship_session_state(const std::string& session, std::int64_t version,
                          const std::string& state_text, std::size_t index,
                          bool resume, std::function<void(bool)> done);
  /// Warm a joining shard with every cached checkpoint (stage-only
  /// ships) — called before the join completes.
  void warm_joiner_sessions(std::size_t index);
  void send_reply(const std::string& to, ingress::wire::Reply reply);
  void refuse(const std::string& to, std::uint64_t request_id,
              const Status& status, std::string refusal);
  /// Feed the shard's health window; counts breaker trips.
  void record_health(std::size_t shard_index,
                     broker::CircuitBreaker::Admission admission,
                     bool success);

  net::Network* network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::string endpoint_name_;
  ingress::Router router_;
  ClusterConfig config_;

  /// Guards the SHAPE of shards_ (append on join, client release on
  /// retire) and every ring_ read/write. Routing paths take it shared
  /// for the decision only — never across a downstream send, so a
  /// reentrant settle can re-acquire it safely.
  mutable std::shared_mutex topology_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardRing ring_{1};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<double> last_rebalance_fraction_{0.0};

  mutable std::mutex model_mutex_;  ///< guards authoritative_; serializes
                                    ///< model_version_ writes
  model::Model authoritative_;
  /// Atomic so ack callbacks can compare versions without nesting
  /// model_mutex_ inside topology_mutex_ (the lock order is
  /// model → nothing, topology → nothing — never one inside the other).
  std::atomic<std::uint64_t> model_version_{1};
  /// Teardown latch: straggler outcomes fired by destructing downstream
  /// clients must not fail over or touch breakers mid-destruction.
  std::atomic<bool> shutting_down_{false};

  /// Session-state replication (PR 10). Decoded from the authoritative
  /// model's `checkpoint_interval` attr: pull + ship a checkpoint after
  /// every N completed sequenced requests per session (0 disables).
  std::int64_t checkpoint_interval_ = 0;
  struct SessionCheckpoint {
    std::int64_t version = 0;    ///< stamp of the cached state_text
    std::string state_text;      ///< last captured checkpoint (text codec)
    std::uint64_t completed = 0;  ///< completed requests since attach
    bool capture_in_flight = false;  ///< at most one pull per session
    /// Highest version known to be LIVE at resumed_shard — captures mark
    /// their source shard current; resume ships mark their target. A
    /// forward to that shard skips the redundant re-import.
    std::int64_t resumed_version = 0;
    std::size_t resumed_shard = static_cast<std::size_t>(-1);
  };
  mutable std::mutex checkpoint_mutex_;  ///< guards checkpoints_ only;
                                         ///< never held across a send
  std::map<std::string, SessionCheckpoint, std::less<>> checkpoints_;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> replies_{0};
  std::atomic<std::uint64_t> reply_failures_{0};
  std::atomic<std::uint64_t> query_fanouts_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> deltas_shipped_{0};
  std::atomic<std::uint64_t> delta_bytes_{0};
  std::atomic<std::uint64_t> full_bytes_{0};
  std::atomic<std::uint64_t> replication_acks_{0};
  std::atomic<std::uint64_t> replication_failures_{0};
  std::atomic<std::uint64_t> stale_marks_{0};
  std::atomic<std::uint64_t> full_syncs_shipped_{0};
  std::atomic<std::uint64_t> full_sync_acks_{0};
  std::atomic<std::uint64_t> joins_started_{0};
  std::atomic<std::uint64_t> joins_completed_{0};
  std::atomic<std::uint64_t> leaves_started_{0};
  std::atomic<std::uint64_t> leaves_completed_{0};
  std::atomic<std::uint64_t> checkpoints_taken_{0};
  std::atomic<std::uint64_t> checkpoint_acks_{0};
  std::atomic<std::uint64_t> checkpoint_failures_{0};
  std::atomic<std::uint64_t> resumes_shipped_{0};
  std::atomic<std::uint64_t> resumes_completed_{0};
};

}  // namespace mdsm::cluster
