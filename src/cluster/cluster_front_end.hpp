// The cluster front-end (PR 8): one well-known ingress endpoint fanning
// a consistent-hash-sharded fleet of ShardNodes out behind it.
//
// Routing: the submit route's {session} capture is the shard key — the
// ShardRing maps it onto the owning shard, whose IngressServer executes
// the request. Clients keep speaking the PR-7 wire protocol to ONE
// endpoint; the front-end forwards via per-shard IngressClients with
// the original "<client>#<id>" identity stamped as forwarded_for, so
// traces and the shard-side dedup ledger see one request no matter how
// many hops (or retries) it took.
//
// Health/failover: every shard gets a PR-4 sliding-window breaker fed
// by forwarding outcomes (a lost reply = failure; a typed refusal means
// the shard is alive and counts as success). A tripped window reroutes
// the session's traffic to its ring-designated replica shard at
// admission time; an individual lost reply fails over the one request
// to the replica. Failover is at-most-once end-to-end: the replica run
// is a fresh execution, and exactly-once refers to the client-facing
// callback ledger (one terminal outcome per request, never two).
//
// Replication: update_model() diffs the new authoritative middleware
// model against the current one and ships the model::diff ChangeList —
// not full model text — to every shard's "replicate/model-diff" route,
// tracking delta vs full-model bytes (the savings BENCH_8 reports).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "broker/invocation_policy.hpp"
#include "cluster/shard_ring.hpp"
#include "common/status.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/router.hpp"
#include "ingress/wire.hpp"
#include "model/model.hpp"
#include "net/network.hpp"

namespace mdsm::cluster {

struct ClusterConfig {
  std::string endpoint = "cluster";  ///< the fleet's public endpoint
  std::size_t virtual_nodes = 64;    ///< ring points per shard
  /// Per-shard health window (PR-4 machinery). The defaults trip after
  /// half of the last 16 forwards are lost, with min_samples guarding
  /// cold shards and a cooldown before half-open probes retest.
  broker::BreakerConfig health{.window = 16,
                               .min_samples = 4,
                               .failure_threshold = 0.5,
                               .cooldown = std::chrono::milliseconds(200),
                               .half_open_probes = 1};
  /// Reply budget per downstream hop before a forward counts as lost.
  Duration downstream_reply_timeout = std::chrono::milliseconds(500);
  /// Retries each downstream client performs itself before reporting
  /// reply-lost (shard-side dedup keeps them idempotent).
  int downstream_retry_budget = 0;
  /// Re-forward a lost request to the replica shard once (false: report
  /// reply-lost to the client as-is).
  bool failover = true;
};

class ClusterFrontEnd {
 public:
  /// Bind the front-end on `network`, forwarding to the shard ingress
  /// endpoints in `shard_endpoints` (index order = ring shard index).
  /// `authoritative_model` seeds the replication baseline — it must be
  /// the middleware model every shard was launched from.
  static Result<std::unique_ptr<ClusterFrontEnd>> attach(
      net::Network& network, const model::Model& authoritative_model,
      std::vector<std::string> shard_endpoints, ClusterConfig config = {});

  ~ClusterFrontEnd();
  ClusterFrontEnd(const ClusterFrontEnd&) = delete;
  ClusterFrontEnd& operator=(const ClusterFrontEnd&) = delete;

  [[nodiscard]] const std::string& endpoint_name() const noexcept {
    return endpoint_name_;
  }
  [[nodiscard]] const ShardRing& ring() const noexcept { return ring_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The shard currently serving `session` (after health rerouting).
  [[nodiscard]] std::size_t shard_for(std::string_view session) const;

  /// Replace the authoritative middleware model: diff, ship the
  /// ChangeList to every shard, adopt `next_model` as the new baseline.
  /// Returns the first immediate send failure (delivery outcomes arrive
  /// asynchronously and land in stats()).
  Status update_model(const model::Model& next_model);

  /// Housekeeping for simulation drivers: expire overdue downstream
  /// forwards (triggering retries/failover). Returns outcomes resolved.
  std::size_t maintain();

  struct Stats {
    std::uint64_t received = 0;    ///< wire messages from clients
    std::uint64_t forwarded = 0;   ///< submits relayed to a shard
    std::uint64_t rerouted = 0;    ///< sent to the replica: breaker open
    std::uint64_t failovers = 0;   ///< re-forwarded after a lost reply
    std::uint64_t refused = 0;     ///< refused at the front-end itself
    std::uint64_t replies = 0;     ///< replies returned to clients
    std::uint64_t reply_failures = 0;
    std::uint64_t query_fanouts = 0;  ///< query/* broadcast to all shards
    std::uint64_t breaker_trips = 0;  ///< health windows opened
    // Replication ledger:
    std::uint64_t deltas_shipped = 0;  ///< update_model() calls that diffed
    std::uint64_t delta_bytes = 0;     ///< ChangeList bytes actually sent
    std::uint64_t full_bytes = 0;      ///< full-model bytes NOT sent
    std::uint64_t replication_acks = 0;
    std::uint64_t replication_failures = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// Everything one forwarded submit needs to fail over and reply.
  struct Forward {
    std::string client;  ///< original sender endpoint
    std::uint64_t id = 0;  ///< original request id (reply correlation)
    std::string session;
    std::string dsml;
    std::string text;
    std::optional<Duration> deadline;
    bool high_priority = false;
    std::optional<std::size_t> fallback;  ///< replica to try on loss
    /// Verdict the target shard's breaker issued for this attempt
    /// (probes must retire their probe slot on settle).
    broker::CircuitBreaker::Admission admission =
        broker::CircuitBreaker::Admission::kAllow;
  };

  struct Shard {
    std::string endpoint;
    std::unique_ptr<ingress::IngressClient> client;
    std::unique_ptr<broker::CircuitBreaker> breaker;
  };

  ClusterFrontEnd(net::Network& network, model::Model authoritative);

  void on_message(const net::Message& message);
  void handle_submit(const net::Message& message,
                     const ingress::RouteParams& params);
  void handle_query(const net::Message& message,
                    const ingress::RouteParams& params);
  void forward(Forward state, std::size_t shard_index);
  /// Resolve one downstream outcome: fail over, or reply to the client.
  void settle_forward(Forward& state, std::size_t shard_index,
                      const ingress::RemoteOutcome& outcome);
  void send_reply(const std::string& to, ingress::wire::Reply reply);
  void refuse(const std::string& to, std::uint64_t request_id,
              const Status& status, std::string refusal);
  /// Feed the shard's health window; counts breaker trips.
  void record_health(std::size_t shard_index,
                     broker::CircuitBreaker::Admission admission,
                     bool success);

  net::Network* network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::string endpoint_name_;
  ingress::Router router_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardRing ring_{1};

  mutable std::mutex model_mutex_;  ///< guards authoritative_
  model::Model authoritative_;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> replies_{0};
  std::atomic<std::uint64_t> reply_failures_{0};
  std::atomic<std::uint64_t> query_fanouts_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> deltas_shipped_{0};
  std::atomic<std::uint64_t> delta_bytes_{0};
  std::atomic<std::uint64_t> full_bytes_{0};
  std::atomic<std::uint64_t> replication_acks_{0};
  std::atomic<std::uint64_t> replication_failures_{0};
};

}  // namespace mdsm::cluster
