#include "cluster/shard_node.hpp"

#include <set>
#include <utility>
#include <vector>

#include "core/middleware_metamodel.hpp"
#include "core/spec_decode.hpp"
#include "ingress/wire.hpp"
#include "model/text_format.hpp"

namespace mdsm::cluster {

namespace {

/// The DscSpec/ProcedureSpec ancestor owning `id` in `model` (the
/// object itself counts), or null when the object sits outside the
/// controller vocabulary (platform attrs, broker specs, ...).
const model::ModelObject* owning_spec(const model::Model& model,
                                      std::string_view id) {
  const model::ModelObject* object = model.find(id);
  while (object != nullptr) {
    if (object->class_name() == "ProcedureSpec" ||
        object->class_name() == "DscSpec") {
      return object;
    }
    if (object->parent_id().empty()) return nullptr;
    object = model.find(object->parent_id());
  }
  return nullptr;
}

controller::Dsc decode_dsc(const model::ModelObject& dsc_spec) {
  controller::Dsc dsc;
  dsc.name = dsc_spec.get_string("name");
  dsc.kind = dsc_spec.get_string("kind", "operation") == "data"
                 ? controller::DscKind::kData
                 : controller::DscKind::kOperation;
  dsc.category = dsc_spec.get_string("category");
  dsc.description = dsc_spec.get_string("description");
  return dsc;
}

/// The session-state envelope is a list of [key, value] pairs
/// ([["session", s], ["version", v], ["resume", b], ["state", tree]]);
/// find `key`.
const model::Value* find_envelope_entry(const model::Value& envelope,
                                        std::string_view key) {
  if (!envelope.is_list()) return nullptr;
  for (const model::Value& entry : envelope.as_list()) {
    if (!entry.is_list() || entry.as_list().size() != 2) continue;
    const model::ValueList& pair = entry.as_list();
    if (pair[0].is_string() && pair[0].as_string() == key) return &pair[1];
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<ShardNode>> ShardNode::launch(
    const model::Model& middleware_model, net::Network& network,
    ShardNodeOptions options) {
  Result<std::unique_ptr<core::Platform>> platform =
      core::Platform::assemble(middleware_model,
                               std::move(options.platform_config));
  if (!platform.ok()) return platform.status();

  std::unique_ptr<ShardNode> node(new ShardNode(middleware_model.clone()));
  node->network_ = &network;
  node->platform_ = std::move(platform).value();
  if (options.provision != nullptr) {
    MDSM_RETURN_IF_ERROR(options.provision(*node->platform_));
  }
  MDSM_RETURN_IF_ERROR(node->platform_->start());

  ingress::IngressServerOptions server_options;
  server_options.endpoint = std::move(options.endpoint);
  server_options.manual_reply_loop = options.manual_reply_loop;
  Result<std::unique_ptr<ingress::IngressServer>> server =
      ingress::IngressServer::attach(*node->platform_, network,
                                     std::move(server_options));
  if (!server.ok()) {
    (void)node->platform_->stop();
    return server.status();
  }
  node->server_ = std::move(server).value();
  node->install_replication_route();
  return node;
}

ShardNode::~ShardNode() {
  // Same ordering as kill(): unbind the endpoint so no new delivery
  // races the drain, stop the platform while the server is still alive
  // (in-flight submit callbacks capture it), then free the server.
  if (server_ != nullptr && network_ != nullptr) {
    (void)network_->remove_endpoint(server_->endpoint_name());
  }
  if (platform_ != nullptr && platform_->running()) (void)platform_->stop();
  server_.reset();
}

void ShardNode::install_replication_route() {
  // Registered before any traffic flows (launch returns the node only
  // after this), satisfying the router's no-concurrent-mutation rule.
  (void)server_->router().add(
      "replicate/{what}",
      [this](const net::Message& message, const ingress::RouteParams& params) {
        handle_replicate(message, params);
      });
  (void)server_->router().add(
      "checkpoint/{session}",
      [this](const net::Message& message, const ingress::RouteParams& params) {
        handle_checkpoint(message, params);
      });
}

void ShardNode::handle_checkpoint(const net::Message& message,
                                  const ingress::RouteParams& params) {
  Result<ingress::wire::Request> decoded =
      ingress::wire::decode_request(message.payload);
  if (!decoded.ok()) {
    server_->post_refusal(message.from, 0, decoded.status(),
                          ingress::wire::is_version_mismatch(decoded.status())
                              ? "bad-version"
                              : "malformed");
    return;
  }
  const std::uint64_t id = decoded.value().request_id;
  Result<model::Value> state =
      platform_->export_session_state(std::string(params.get("session")));
  if (!state.ok()) {
    server_->post_refusal(message.from, id, state.status(), {});
    return;
  }
  {
    std::lock_guard lock(replica_mutex_);
    ++stats_.checkpoints_exported;
  }
  ingress::wire::Reply reply;
  reply.request_id = id;
  reply.message = state.value().to_text();
  server_->post_reply(message.from, std::move(reply));
}

void ShardNode::handle_session_state(const net::Message& message,
                                     std::uint64_t id,
                                     const ingress::wire::Request& request) {
  const model::Value* session = find_envelope_entry(request.body, "session");
  const model::Value* version = find_envelope_entry(request.body, "version");
  const model::Value* state = find_envelope_entry(request.body, "state");
  const model::Value* resume = find_envelope_entry(request.body, "resume");
  if (session == nullptr || !session->is_string() || version == nullptr ||
      !version->is_int() || state == nullptr) {
    server_->post_refusal(
        message.from, id,
        InvalidArgument("session-state envelope needs session/version/state"),
        "malformed");
    return;
  }
  const std::string& key = session->as_string();
  const std::int64_t shipped = version->as_int();
  {
    std::lock_guard lock(replica_mutex_);
    auto it = staged_checkpoints_.find(key);
    // Strict <: re-shipping the staged version is an idempotent retry
    // and must succeed; only an *older* checkpoint is refused so a
    // delayed ship can never roll a session back.
    if (it != staged_checkpoints_.end() && shipped < it->second.version) {
      ++stats_.session_states_rejected_stale;
      server_->post_refusal(
          message.from, id,
          FailedPrecondition("checkpoint v" + std::to_string(shipped) +
                             " for session '" + key +
                             "' is older than staged v" +
                             std::to_string(it->second.version)),
          "stale-checkpoint");
      return;
    }
    staged_checkpoints_[key] = StagedCheckpoint{shipped, *state};
    ++stats_.session_states_staged;
  }
  if (resume != nullptr && resume->is_bool() && resume->as_bool()) {
    // Failover: adopt the checkpoint into the live platform *before*
    // the front-end forwards the retried request, so sequenced work
    // resumes from where the dead owner left off.
    if (Status imported = platform_->import_session_state(*state);
        !imported.ok()) {
      server_->post_refusal(message.from, id, imported, {});
      return;
    }
    std::lock_guard lock(replica_mutex_);
    ++stats_.session_states_imported;
  }
  ingress::wire::Reply reply;
  reply.request_id = id;
  reply.message = "session-state staged";
  reply.commands = shipped;
  server_->post_reply(message.from, std::move(reply));
}

void ShardNode::handle_replicate(const net::Message& message,
                                 const ingress::RouteParams& params) {
  Result<ingress::wire::Request> decoded =
      ingress::wire::decode_request(message.payload);
  if (!decoded.ok()) {
    server_->post_refusal(message.from, 0, decoded.status(),
                          ingress::wire::is_version_mismatch(decoded.status())
                              ? "bad-version"
                              : "malformed");
    return;
  }
  const std::uint64_t id = decoded.value().request_id;
  const std::string_view what = params.get("what");
  if (what == "model-full") {
    // Full-model ship: the warm-up / stale-repair path. The payload is
    // serialized model text; the node diffs it against its replica so
    // the apply machinery (and the vocabulary re-sync) is shared with
    // the delta path.
    Result<model::Model> full = model::parse_model(
        decoded.value().text, core::middleware_metamodel());
    if (!full.ok()) {
      server_->post_refusal(message.from, id, full.status(), "malformed");
      return;
    }
    if (Status status = apply_full_model(full.value()); !status.ok()) {
      server_->post_refusal(message.from, id, status, {});
      return;
    }
    ingress::wire::Reply reply;
    reply.request_id = id;
    reply.message = "model-full applied";
    server_->post_reply(message.from, std::move(reply));
    return;
  }
  if (what == "session-state") {
    handle_session_state(message, id, decoded.value());
    return;
  }
  if (what != "model-diff") {
    server_->post_refusal(
        message.from, id,
        NotFound("unknown replication payload '" + std::string(what) + "'"),
        "no-route");
    return;
  }
  Result<model::ChangeList> changes =
      model::decode_changes(decoded.value().body);
  if (!changes.ok()) {
    server_->post_refusal(message.from, id, changes.status(), "malformed");
    return;
  }
  const std::int64_t applied =
      static_cast<std::int64_t>(changes.value().size());
  if (Status status = apply_changes(changes.value()); !status.ok()) {
    server_->post_refusal(message.from, id, status, {});
    return;
  }
  ingress::wire::Reply reply;
  reply.request_id = id;
  reply.message = "model-diff applied";
  reply.commands = applied;
  server_->post_reply(message.from, std::move(reply));
}

Status ShardNode::apply_changes(const model::ChangeList& changes) {
  std::lock_guard lock(replica_mutex_);
  return apply_changes_locked(changes);
}

Status ShardNode::apply_full_model(const model::Model& full) {
  std::lock_guard lock(replica_mutex_);
  // The diff must be computed against the replica under the same lock
  // that apply uses, or a racing delta could wedge between the two.
  const model::ChangeList changes = model::diff(replica_model_, full);
  if (!changes.empty()) {
    MDSM_RETURN_IF_ERROR(apply_changes_locked(changes));
  }
  ++stats_.full_syncs_applied;
  return Status::Ok();
}

Status ShardNode::apply_changes_locked(const model::ChangeList& changes) {
  // Pre-apply pass: removals must be resolved against the model that
  // still contains them — both the registry keys (`name` attributes) of
  // removed specs, and the owning spec of a removed *descendant* (a
  // step deleted from a surviving procedure re-syncs that procedure).
  std::vector<std::string> removed_procedures;
  std::vector<std::string> removed_dscs;
  std::set<std::string> touched_specs;
  for (const model::Change& change : changes) {
    if (change.kind == model::ChangeKind::kRemoveObject) {
      const model::ModelObject* object = replica_model_.find(change.object_id);
      if (object == nullptr) continue;
      if (object->class_name() == "ProcedureSpec") {
        removed_procedures.push_back(object->get_string("name"));
        continue;
      }
      if (object->class_name() == "DscSpec") {
        removed_dscs.push_back(object->get_string("name"));
        continue;
      }
      if (const model::ModelObject* spec =
              owning_spec(replica_model_, change.object_id);
          spec != nullptr) {
        touched_specs.insert(spec->id());
      }
    }
  }

  MDSM_RETURN_IF_ERROR(model::apply(changes, replica_model_));

  // Post-apply pass: additions and mutations resolve against the new
  // model state (an added object's ancestors exist only now).
  for (const model::Change& change : changes) {
    if (change.kind == model::ChangeKind::kRemoveObject) continue;
    if (const model::ModelObject* spec =
            owning_spec(replica_model_, change.object_id);
        spec != nullptr) {
      touched_specs.insert(spec->id());
    }
  }

  // Withdraw vocabulary first (a procedure and its classifier may leave
  // together), then upsert DSCs before the procedures that validate
  // against them.
  controller::ControllerLayer& controller = platform_->controller();
  for (const std::string& name : removed_procedures) {
    (void)controller.repository().remove(name);
  }
  for (const std::string& name : removed_dscs) {
    (void)controller.dscs().remove(name);
  }

  std::vector<const model::ModelObject*> touched_procedures;
  for (const std::string& spec_id : touched_specs) {
    const model::ModelObject* spec = replica_model_.find(spec_id);
    if (spec == nullptr) continue;  // removed later in the same delta
    if (spec->class_name() == "DscSpec") {
      controller::Dsc dsc = decode_dsc(*spec);
      (void)controller.dscs().remove(dsc.name);
      MDSM_RETURN_IF_ERROR(controller.dscs().add(std::move(dsc)));
      ++stats_.dscs_synced;
    } else {
      touched_procedures.push_back(spec);
    }
  }
  for (const model::ModelObject* spec : touched_procedures) {
    Result<controller::Procedure> procedure =
        core::decode_procedure(replica_model_, *spec);
    if (!procedure.ok()) return procedure.status();
    (void)controller.repository().remove(procedure.value().name);
    MDSM_RETURN_IF_ERROR(
        controller.add_procedure(std::move(procedure.value())));
    ++stats_.procedures_synced;
  }

  ++stats_.deltas_applied;
  stats_.changes_applied += changes.size();
  return Status::Ok();
}

std::size_t ShardNode::pump() {
  return server_ != nullptr ? server_->pump() : 0;
}

void ShardNode::kill() {
  if (killed_) return;
  killed_ = true;
  // Unbind first — traffic becomes undeliverable — but keep the server
  // object alive: pipeline workers still hold submit callbacks that
  // capture it. stop() drains those callbacks (their replies now fail
  // kUnavailable and are dropped); only then may the server be freed.
  (void)network_->remove_endpoint(server_->endpoint_name());
  if (platform_ != nullptr && platform_->running()) (void)platform_->stop();
  server_.reset();
}

ShardNode::Stats ShardNode::replication_stats() const {
  std::lock_guard lock(replica_mutex_);
  return stats_;
}

std::optional<std::int64_t> ShardNode::staged_checkpoint_version(
    std::string_view session) const {
  std::lock_guard lock(replica_mutex_);
  auto it = staged_checkpoints_.find(session);
  if (it == staged_checkpoints_.end()) return std::nullopt;
  return it->second.version;
}

}  // namespace mdsm::cluster
