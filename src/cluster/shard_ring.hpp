// Consistent-hash ring over shard indices (PR 8, elastic since PR 9).
//
// The cluster front-end maps the ingress route's {session} capture onto
// one of N backend platforms. A plain hash % N would reshuffle nearly
// every session when N changes; the ring only moves the keys adjacent
// to the vanished/added node. Each shard projects `virtual_nodes`
// points onto a 64-bit circle — FNV-1a (the same hash family the IM
// cache shards by) run through an avalanche finalizer, since raw FNV
// clusters short keys with shared prefixes — smoothing the key
// distribution; a key's owner is
// the first point at or clockwise of the key's own hash, and its
// designated replica is the next *distinct* shard clockwise — the node
// the front-end fails over to when the owner's health window trips.
//
// Elasticity: membership is a mutable set of shard ids. add_shard() /
// remove_shard() splice a member's virtual nodes in or out and return
// the exact set of key-arcs whose ownership changed, so callers can
// bound migration (and tests can prove only ~1/(N+1) of the keyspace
// moved). Shard ids are stable across resizes — removing shard 2 from
// {0,1,2,3} leaves {0,1,3}; nobody is renumbered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace mdsm::cluster {

/// FNV-1a 64-bit — deterministic across runs, so shard placement is
/// reproducible in tests and benches.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

class ShardRing {
 public:
  /// Build a ring over shards [0, shards); `virtual_nodes` points per
  /// shard (>= 1; more points = smoother distribution).
  explicit ShardRing(std::size_t shards, std::size_t virtual_nodes = 64);

  /// One contiguous span of the hash circle whose owner changed in a
  /// resize: every key whose ring position lies in (begin, end] moved
  /// from shard `from` to shard `to`. `begin > end` means the arc wraps
  /// past the top of the circle.
  struct Arc {
    std::uint64_t begin;
    std::uint64_t end;
    std::size_t from;
    std::size_t to;
  };

  /// The position a key occupies on the circle (what owner() looks up).
  [[nodiscard]] static std::uint64_t position(std::string_view key) noexcept;

  /// Splice `shard` into the ring. Returns the arcs that moved — all of
  /// them moving TO the new shard — or an empty list when `shard` was
  /// already a member. ShardRing(n).add_shard(n) is point-for-point
  /// identical to ShardRing(n + 1).
  std::vector<Arc> add_shard(std::size_t shard);

  /// Splice `shard` out of the ring. Returns the arcs that moved — all
  /// of them moving FROM the departing shard to a survivor — or an
  /// empty list when `shard` is not a member or is the last one (a ring
  /// must always have an owner for every key).
  std::vector<Arc> remove_shard(std::size_t shard);

  /// True when `key`'s position lies inside one of `arcs`.
  [[nodiscard]] static bool arcs_contain(const std::vector<Arc>& arcs,
                                         std::string_view key) noexcept;

  /// Fraction of the keyspace the arcs cover, in [0, 1] — the migration
  /// bound a resize imposes.
  [[nodiscard]] static double arcs_fraction(
      const std::vector<Arc>& arcs) noexcept;

  /// The shard owning `key` (first ring point clockwise of hash(key)).
  [[nodiscard]] std::size_t owner(std::string_view key) const noexcept;

  /// The designated failover shard for `key`: the next point clockwise
  /// of the owner's belonging to a *different* shard. With one shard,
  /// replica(key) == owner(key).
  [[nodiscard]] std::size_t replica(std::string_view key) const noexcept;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t points() const noexcept { return ring_.size(); }
  [[nodiscard]] bool contains(std::size_t shard) const noexcept;
  [[nodiscard]] std::vector<std::size_t> members() const;

 private:
  struct Point {
    std::uint64_t position;
    std::size_t shard;
  };

  /// Index into ring_ of the point owning `key`.
  [[nodiscard]] std::size_t owner_point(std::string_view key) const noexcept;

  std::size_t shards_;         ///< member count (not the max id)
  std::size_t virtual_nodes_;  ///< points per member
  std::vector<Point> ring_;    ///< sorted by position
};

}  // namespace mdsm::cluster
