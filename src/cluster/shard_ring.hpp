// Consistent-hash ring over shard indices (PR 8).
//
// The cluster front-end maps the ingress route's {session} capture onto
// one of N backend platforms. A plain hash % N would reshuffle nearly
// every session when N changes; the ring only moves the keys adjacent
// to the vanished/added node. Each shard projects `virtual_nodes`
// points onto a 64-bit circle — FNV-1a (the same hash family the IM
// cache shards by) run through an avalanche finalizer, since raw FNV
// clusters short keys with shared prefixes — smoothing the key
// distribution; a key's owner is
// the first point at or clockwise of the key's own hash, and its
// designated replica is the next *distinct* shard clockwise — the node
// the front-end fails over to when the owner's health window trips.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace mdsm::cluster {

/// FNV-1a 64-bit — deterministic across runs, so shard placement is
/// reproducible in tests and benches.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

class ShardRing {
 public:
  /// Build a ring over shards [0, shards); `virtual_nodes` points per
  /// shard (>= 1; more points = smoother distribution).
  explicit ShardRing(std::size_t shards, std::size_t virtual_nodes = 64);

  /// The shard owning `key` (first ring point clockwise of hash(key)).
  [[nodiscard]] std::size_t owner(std::string_view key) const noexcept;

  /// The designated failover shard for `key`: the next point clockwise
  /// of the owner's belonging to a *different* shard. With one shard,
  /// replica(key) == owner(key).
  [[nodiscard]] std::size_t replica(std::string_view key) const noexcept;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t points() const noexcept { return ring_.size(); }

 private:
  struct Point {
    std::uint64_t position;
    std::size_t shard;
  };

  /// Index into ring_ of the point owning `key`.
  [[nodiscard]] std::size_t owner_point(std::string_view key) const noexcept;

  std::size_t shards_;
  std::vector<Point> ring_;  ///< sorted by position
};

}  // namespace mdsm::cluster
