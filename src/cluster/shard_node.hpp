// One member of the sharded platform cluster (PR 8): a full Platform
// plus its own IngressServer endpoint on the shared simulated network,
// and a replica of the cluster's authoritative middleware model.
//
// Runtime-model changes (DSK/procedure updates) reach shards as
// model::diff ChangeLists on the "replicate/{what}" extension route —
// the front-end ships deltas, never full model text. The node applies
// the delta to its replica model, then re-decodes only the controller
// artifacts the delta touched (DscSpec → DscRegistry upsert/remove,
// ProcedureSpec → ProcedureRepository upsert/remove via
// core::decode_procedure). The PR-3 version stamps on both registries
// invalidate cached intent models automatically, so traffic in flight
// during a replication never executes against a stale vocabulary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "core/platform.hpp"
#include "ingress/ingress_server.hpp"
#include "model/diff.hpp"
#include "model/model.hpp"
#include "net/network.hpp"

namespace mdsm::cluster {

struct ShardNodeOptions {
  /// Endpoint this shard's ingress binds ("" derives
  /// "<platform-name>.ingress" — pass explicit names, shards share one
  /// middleware model).
  std::string endpoint;
  /// Platform assembly knobs (clock, pipeline threads, LTS override...).
  core::PlatformConfig platform_config;
  /// Manual reply loop for deterministic tests (see IngressServer).
  bool manual_reply_loop = false;
  /// Called between assemble() and start() to install the shard's
  /// resource adapters (each shard needs its own adapter instances).
  std::function<Status(core::Platform&)> provision;
};

class ShardNode {
 public:
  /// Assemble, provision and start a platform from `middleware_model`,
  /// bind its ingress on `network`, and install the replication route.
  static Result<std::unique_ptr<ShardNode>> launch(
      const model::Model& middleware_model, net::Network& network,
      ShardNodeOptions options);

  ~ShardNode();
  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  [[nodiscard]] const std::string& endpoint_name() const noexcept {
    return server_->endpoint_name();
  }
  [[nodiscard]] core::Platform& platform() noexcept { return *platform_; }
  [[nodiscard]] ingress::IngressServer& server() noexcept { return *server_; }

  /// Manual reply loop only: drain queued replies.
  std::size_t pump();

  /// Simulate a node death: unbind the endpoint and stop the platform.
  /// Subsequent messages to this shard become undeliverable, which is
  /// exactly what the front-end's health window observes.
  void kill();
  [[nodiscard]] bool alive() const noexcept { return !killed_; }

  /// Apply a replication delta to the replica model and re-sync the
  /// controller vocabulary it touched (exposed for tests; the wire path
  /// arrives via "replicate/model-diff").
  Status apply_changes(const model::ChangeList& changes);

  /// Full-model sync (PR 9): diff the authoritative `full` model against
  /// the local replica and apply the difference — the warm-up path for a
  /// freshly joined shard and the repair path for one that missed or
  /// nacked a delta. The wire path arrives via "replicate/model-full"
  /// carrying the serialized model text.
  Status apply_full_model(const model::Model& full);

  struct Stats {
    std::uint64_t deltas_applied = 0;   ///< replication payloads accepted
    std::uint64_t changes_applied = 0;  ///< individual changes in them
    std::uint64_t full_syncs_applied = 0;  ///< full-model ships accepted
    std::uint64_t procedures_synced = 0;
    std::uint64_t dscs_synced = 0;
    // Session-state replication (PR 10).
    std::uint64_t checkpoints_exported = 0;  ///< "checkpoint/{session}" serves
    std::uint64_t session_states_staged = 0;  ///< checkpoints accepted+held
    std::uint64_t session_states_imported = 0;  ///< resume imports applied
    std::uint64_t session_states_rejected_stale = 0;  ///< version-gated drops
  };
  [[nodiscard]] Stats replication_stats() const;

  /// Version of the checkpoint currently staged for `session` (nullopt
  /// when none has been shipped) — exposed for tests.
  [[nodiscard]] std::optional<std::int64_t> staged_checkpoint_version(
      std::string_view session) const;

 private:
  explicit ShardNode(model::Model replica_model)
      : replica_model_(std::move(replica_model)) {}

  void install_replication_route();
  void handle_replicate(const net::Message& message,
                        const ingress::RouteParams& params);
  /// Serve "checkpoint/{session}": export this platform's session state
  /// and reply with its text encoding (the front-end's capture path).
  void handle_checkpoint(const net::Message& message,
                         const ingress::RouteParams& params);
  /// "replicate/session-state" payload: version-gate, stage, and (on a
  /// resume ship) import into the live platform.
  void handle_session_state(const net::Message& message, std::uint64_t id,
                            const ingress::wire::Request& request);
  /// apply_changes with replica_mutex_ already held.
  Status apply_changes_locked(const model::ChangeList& changes);
  /// Upsert/remove the DscSpec/ProcedureSpec artifacts `changes` touch.
  Status sync_touched_artifacts(const model::ChangeList& changes);

  std::unique_ptr<core::Platform> platform_;
  std::unique_ptr<ingress::IngressServer> server_;
  net::Network* network_ = nullptr;
  bool killed_ = false;

  mutable std::mutex replica_mutex_;  ///< guards replica_model_ + stats
  model::Model replica_model_;
  Stats stats_;

  /// Last checkpoint shipped per session, version-gated (strict <: an
  /// equal-version re-ship is an idempotent retry and is accepted).
  struct StagedCheckpoint {
    std::int64_t version = 0;
    model::Value state;
  };
  std::map<std::string, StagedCheckpoint, std::less<>>
      staged_checkpoints_;  ///< guarded by replica_mutex_
};

}  // namespace mdsm::cluster
