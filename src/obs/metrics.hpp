// Platform-wide metrics registry: monotonic counters plus fixed-bucket
// latency histograms, recorded from every layer of the pipeline. The hot
// path is lock-cheap — counters and histogram buckets are relaxed
// atomics; the registry mutex is only taken to resolve a metric name to
// its (stable) cell, and layers cache the returned references.
//
// Snapshots are value copies so callers can diff them across a workload
// without racing the recorders (models@runtime discipline applied to the
// platform's own telemetry).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace mdsm::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency histogram over microseconds with fixed power-of-two buckets:
/// bucket 0 holds 0µs, bucket i holds [2^(i-1), 2^i) µs, and the last
/// bucket absorbs everything longer (~2 minutes and up).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 28;

  void record(Duration elapsed) noexcept {
    record_us(elapsed.count() <= 0
                  ? 0
                  : static_cast<std::uint64_t>(elapsed.count()));
  }
  void record_us(std::uint64_t us) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const noexcept {
    return sum_us_.load(std::memory_order_relaxed);
  }
  /// Upper bound (µs, inclusive) of the bucket containing quantile `q`
  /// of the recorded samples; 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t quantile_us(double q) const noexcept;
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const noexcept;

  /// Inclusive upper bound (µs) of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_bound_us(
      std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t p50_us = 0;
    std::uint64_t p95_us = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };

  std::vector<CounterRow> counters;      ///< sorted by name
  std::vector<HistogramRow> histograms;  ///< sorted by name

  [[nodiscard]] const CounterRow* counter(std::string_view name) const;
  [[nodiscard]] const HistogramRow* histogram(std::string_view name) const;
  /// Counter value by name; 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

/// Name → metric cells. Cells are heap-allocated once and never move, so
/// references returned by counter()/histogram() stay valid for the
/// registry's lifetime and may be cached by recorders.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Human-readable dump (one metric per line), for CLIs and debugging.
  [[nodiscard]] std::string to_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mdsm::obs
