#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace mdsm::obs {

void Histogram::record_us(std::uint64_t us) noexcept {
  std::size_t index =
      us == 0 ? 0
              : std::min<std::size_t>(static_cast<std::size_t>(
                                          std::bit_width(us)),
                                      kBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound_us(std::size_t index) noexcept {
  if (index == 0) return 0;
  return (std::uint64_t{1} << index) - 1;
}

std::uint64_t Histogram::quantile_us(double q) const noexcept {
  std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return bucket_bound_us(i);
  }
  return bucket_bound_us(kBuckets - 1);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const MetricsSnapshot::CounterRow* MetricsSnapshot::counter(
    std::string_view name) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramRow* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramRow& row : histograms) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const CounterRow* row = counter(name);
  return row == nullptr ? 0 : row->value;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.counters.push_back({name, cell->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = cell->count();
    row.sum_us = cell->sum_us();
    row.p50_us = cell->quantile_us(0.5);
    row.p95_us = cell->quantile_us(0.95);
    row.buckets = cell->buckets();
    out.histograms.push_back(std::move(row));
  }
  return out;
}

std::string MetricsRegistry::to_text() const {
  MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& row : snap.counters) {
    out += row.name + " " + std::to_string(row.value) + "\n";
  }
  for (const auto& row : snap.histograms) {
    out += row.name + " count=" + std::to_string(row.count) +
           " sum_us=" + std::to_string(row.sum_us) +
           " p50_us<=" + std::to_string(row.p50_us) +
           " p95_us<=" + std::to_string(row.p95_us) + "\n";
  }
  return out;
}

}  // namespace mdsm::obs
