#include "obs/trace.hpp"

#include <chrono>

#include "common/ids.hpp"

namespace mdsm::obs {

std::uint64_t Trace::open(std::string_view name, std::string_view detail) {
  Span span;
  span.id = next_id();
  if (!open_.empty()) {
    const Span& parent = spans_[open_.back()];
    span.parent = parent.id;
    span.depth = parent.depth + 1;
  }
  span.name.assign(name);
  span.detail.assign(detail);
  span.start = clock_->now();
  span.end = span.start;
  open_.push_back(spans_.size());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::close(std::uint64_t span_id) {
  if (span_id == 0) return;
  TimePoint now = clock_->now();
  while (!open_.empty()) {
    Span& span = spans_[open_.back()];
    open_.pop_back();
    span.end = now;
    span.closed = true;
    if (span.id == span_id) return;
  }
}

const Span* Trace::find(std::string_view name) const noexcept {
  for (const Span& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

const Span* Trace::find_id(std::uint64_t span_id) const noexcept {
  for (const Span& span : spans_) {
    if (span.id == span_id) return &span;
  }
  return nullptr;
}

std::size_t Trace::count(std::string_view name) const noexcept {
  std::size_t n = 0;
  for (const Span& span : spans_) {
    if (span.name == name) ++n;
  }
  return n;
}

std::uint64_t Trace::current() const noexcept {
  return open_.empty() ? 0 : spans_[open_.back()].id;
}

std::string Trace::to_text() const {
  std::string out;
  for (const Span& span : spans_) {
    out.append(2 * span.depth, ' ');
    out += span.name;
    if (!span.detail.empty()) out += " [" + span.detail + "]";
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  span.elapsed())
                  .count();
    out += " " + std::to_string(us) + "us";
    if (!span.closed) out += " (open)";
    out += "\n";
  }
  return out;
}

}  // namespace mdsm::obs
