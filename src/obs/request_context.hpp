// The per-request identity threaded through all four layers (UI →
// Synthesis → Controller → Broker). A context is minted at the UI
// boundary (Platform::submit_model*) and carries:
//
//   - a process-unique request id ("req-<n>") that every EU execution,
//     broker action, bus event and autonomic reaction is correlated with;
//   - wall and steady timestamps taken from the platform's injected
//     clock, plus an optional deadline checked at layer crossings;
//   - the request's Trace (span tree) and a pointer to the platform's
//     MetricsRegistry — closing a span records its latency histogram.
//
// Legacy entry points that predate context threading run against the
// shared noop() context: span and metric operations become no-ops and
// observable behavior is unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdsm::obs {

/// Process-wide steady clock, the default time source for contexts
/// minted outside a platform (and platforms with no injected clock).
const Clock& steady_clock() noexcept;

class RequestContext {
 public:
  explicit RequestContext(const Clock& clock = steady_clock(),
                          MetricsRegistry* metrics = nullptr,
                          std::optional<Duration> deadline = {});

  RequestContext(RequestContext&&) = default;
  RequestContext& operator=(RequestContext&&) = delete;
  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// The shared disabled context used by context-less entry points.
  /// Every operation on it is a thread-safe no-op.
  static RequestContext& noop() noexcept;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }
  [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] MetricsRegistry* metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::chrono::system_clock::time_point wall_start()
      const noexcept {
    return wall_start_;
  }
  [[nodiscard]] TimePoint steady_start() const noexcept {
    return steady_start_;
  }
  [[nodiscard]] Duration elapsed() const noexcept {
    return clock_->now() - steady_start_;
  }

  [[nodiscard]] std::optional<TimePoint> deadline() const noexcept {
    return deadline_;
  }
  /// A request exactly at its deadline has no budget left: with a
  /// microsecond-granular SimClock, `now == deadline` means the whole
  /// allowance is spent, so the boundary counts as expired.
  [[nodiscard]] bool expired() const noexcept {
    return deadline_.has_value() && clock_->now() >= *deadline_;
  }
  /// Ok, or a Timeout status naming the layer that hit the deadline.
  [[nodiscard]] Status check_deadline(std::string_view layer) const;

  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Span management; see Trace. Closing records the span's latency in
  /// the metrics histogram "latency.<span name>" when metrics are
  /// attached. Both are no-ops on a disabled context.
  std::uint64_t open_span(std::string_view name, std::string_view detail = {});
  void close_span(std::uint64_t span_id);

  /// Free-form request attributes ("priority" = "high", tenant tags, …)
  /// set at the UI boundary and readable at any layer crossing. Requests
  /// carry a handful at most, so a flat vector beats a map. No-op /
  /// empty on a disabled context. Setting an existing key overwrites.
  void set_attribute(std::string key, std::string value);
  [[nodiscard]] std::string_view attribute(std::string_view key) const noexcept;
  /// True when the request is marked control-plane ("priority" = "high");
  /// the platform's async pipeline dequeues such requests first.
  [[nodiscard]] bool high_priority() const noexcept {
    return attribute("priority") == "high";
  }
  /// Cross-wire identity (PR 7): the attribute key under which a
  /// networked ingress stamps the *sender's* request id, so a span tree
  /// recorded on the platform side can be joined with the remote
  /// client's ledger. Empty for in-process requests.
  static constexpr std::string_view kRemoteIdAttribute =
      "ingress.request_id";
  [[nodiscard]] std::string_view remote_id() const noexcept {
    return attribute(kRemoteIdAttribute);
  }

 private:
  struct NoopTag {};
  explicit RequestContext(NoopTag) noexcept;

  bool enabled_ = true;
  std::uint64_t id_ = 0;
  std::string tag_;
  const Clock* clock_;
  MetricsRegistry* metrics_ = nullptr;
  std::chrono::system_clock::time_point wall_start_{};
  TimePoint steady_start_{};
  std::optional<TimePoint> deadline_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  Trace trace_;
};

/// RAII span over a context ("one span per layer crossing").
class ScopedSpan {
 public:
  ScopedSpan(RequestContext& context, std::string_view name,
             std::string_view detail = {})
      : context_(&context), id_(context.open_span(name, detail)) {}
  ~ScopedSpan() { context_->close_span(id_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RequestContext* context_;
  std::uint64_t id_;
};

/// The ambient (thread-local) context of the request currently being
/// processed, or nullptr. Components reached without a context parameter
/// — bus subscribers, autonomic reactions — correlate through this.
[[nodiscard]] RequestContext* current() noexcept;

/// Installs `context` as the ambient one for the current scope. Disabled
/// contexts are not installed, so legacy (noop) entry points nested
/// inside a traced request never mask its ambient context.
class ContextScope {
 public:
  explicit ContextScope(RequestContext& context) noexcept;
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  RequestContext* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace mdsm::obs
