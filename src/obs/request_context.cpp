#include "obs/request_context.hpp"

#include "common/ids.hpp"

namespace mdsm::obs {

namespace {
thread_local RequestContext* g_current = nullptr;
}  // namespace

const Clock& steady_clock() noexcept {
  static const SteadyClock clock;
  return clock;
}

RequestContext::RequestContext(const Clock& clock, MetricsRegistry* metrics,
                               std::optional<Duration> deadline)
    : id_(next_id()),
      tag_("req-" + std::to_string(id_)),
      clock_(&clock),
      metrics_(metrics),
      wall_start_(std::chrono::system_clock::now()),
      steady_start_(clock.now()),
      trace_(clock) {
  if (deadline.has_value()) deadline_ = steady_start_ + *deadline;
}

RequestContext::RequestContext(NoopTag) noexcept
    : enabled_(false), clock_(&steady_clock()), trace_(steady_clock()) {}

RequestContext& RequestContext::noop() noexcept {
  static RequestContext context{NoopTag{}};
  return context;
}

Status RequestContext::check_deadline(std::string_view layer) const {
  if (!expired()) return Status::Ok();
  return Timeout(tag_ + " missed its deadline before the " +
                 std::string(layer) + " layer");
}

void RequestContext::set_attribute(std::string key, std::string value) {
  if (!enabled_) return;
  for (auto& [existing, current] : attributes_) {
    if (existing == key) {
      current = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

std::string_view RequestContext::attribute(
    std::string_view key) const noexcept {
  for (const auto& [existing, value] : attributes_) {
    if (existing == key) return value;
  }
  return {};
}

std::uint64_t RequestContext::open_span(std::string_view name,
                                        std::string_view detail) {
  if (!enabled_) return 0;
  return trace_.open(name, detail);
}

void RequestContext::close_span(std::uint64_t span_id) {
  if (!enabled_ || span_id == 0) return;
  trace_.close(span_id);
  if (metrics_ == nullptr) return;
  const Span* span = trace_.find_id(span_id);
  if (span == nullptr) return;
  metrics_->histogram("latency." + span->name).record(span->elapsed());
}

RequestContext* current() noexcept { return g_current; }

ContextScope::ContextScope(RequestContext& context) noexcept {
  if (!context.enabled()) return;
  previous_ = g_current;
  g_current = &context;
  installed_ = true;
}

ContextScope::~ContextScope() {
  if (installed_) g_current = previous_;
}

}  // namespace mdsm::obs
