// Per-request span tree. Every crossing of a layer boundary — and the
// finer-grained units inside a layer (EU executions, broker actions,
// autonomic reactions) — opens a span; spans nest by open order, so the
// finished trace reads as the request's path through the four-layer
// pipeline. Traces are owned by a RequestContext and are single-writer:
// the (synchronous) execution path of one request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace mdsm::obs {

struct Span {
  std::uint64_t id = 0;      ///< process-unique (common/ids)
  std::uint64_t parent = 0;  ///< enclosing span id; 0 = root
  std::uint32_t depth = 0;   ///< nesting level (root = 0)
  std::string name;          ///< taxonomy-constant, e.g. "broker.call"
  std::string detail;        ///< free text, e.g. the signal name
  TimePoint start{};
  TimePoint end{};
  bool closed = false;

  [[nodiscard]] Duration elapsed() const noexcept { return end - start; }
};

class Trace {
 public:
  explicit Trace(const Clock& clock) : clock_(&clock) {}

  /// Open a span as a child of the innermost open span; returns its id.
  std::uint64_t open(std::string_view name, std::string_view detail = {});

  /// Close `span_id`. Any spans opened inside it that are still open are
  /// closed too (error paths unwind without visiting every close).
  void close(std::uint64_t span_id);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  /// First span with this name (nullptr if none). Pointers are
  /// invalidated by the next open() — inspect finished traces only.
  [[nodiscard]] const Span* find(std::string_view name) const noexcept;
  [[nodiscard]] const Span* find_id(std::uint64_t span_id) const noexcept;
  [[nodiscard]] std::size_t count(std::string_view name) const noexcept;
  /// Innermost open span id (0 when none are open).
  [[nodiscard]] std::uint64_t current() const noexcept;
  [[nodiscard]] bool all_closed() const noexcept { return open_.empty(); }

  /// Indented rendering of the tree, one span per line.
  [[nodiscard]] std::string to_text() const;

 private:
  const Clock* clock_;
  std::vector<Span> spans_;
  std::vector<std::size_t> open_;  ///< indices into spans_, stack order
};

}  // namespace mdsm::obs
