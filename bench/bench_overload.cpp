// Overload bench (PR 5): goodput, shed rate and tail latency of the
// async request pipeline as offered load sweeps 1x–10x of its nominal
// capacity.
//
// The platform under test is the CVM with model-driven overload
// protection spliced into its MiddlewarePlatform root: a bounded
// pipeline queue (kReject) and deadline-aware admission control. A
// feeder thread paces submit_async() calls at the target rate; every
// request carries the same deadline budget. Per multiplier we record:
//
//   - goodput: requests whose callback delivered Ok, per second;
//   - shed/rejected: refused at the door (admission or full queue) or
//     failed in flight (deadline crossings);
//   - late completions: Ok callbacks delivered after the request's
//     budget — the overload system's contract is that this stays ZERO
//     (doomed work is shed, not finished late);
//   - queue depth high-water vs the configured capacity.
//
// Pass criteria (recorded in BENCH_5.json): bounded depth <= capacity,
// zero late completions at every multiplier, and 10x goodput within 20%
// of the 1x plateau — an unprotected pipeline instead collapses as every
// queued request times out.
//
// Output: human summary on stderr, one JSON document on stdout so
// run_benches.sh can record the rows in BENCH_5.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"

namespace {

using namespace mdsm;

/// Thread-safe stand-in for the comm services: each invocation sleeps
/// for the configured service latency.
class SimulatedCommService final : public broker::ResourceAdapter {
 public:
  SimulatedCommService(std::string name, std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return model::Value(true);
  }

 private:
  std::chrono::microseconds delay_;
};

struct BenchConfig {
  int pipeline_threads = 4;
  int queue_capacity = 64;
  int service_delay_us = 300;
  int deadline_ms = 25;
  double seconds_per_step = 1.0;
  bool json_only = false;
};

/// The CVM middleware model with the PR-5 overload attributes spliced
/// into its MiddlewarePlatform root — the same model-driven path the
/// platform decodes queue_capacity / overflow_policy / admission from.
std::string overload_cvm_text(const BenchConfig& config) {
  std::string text(comm::cvm_middleware_model_text());
  const std::string anchor = "domain = \"communication\"";
  std::string attrs = "\n  queue_capacity = " +
                      std::to_string(config.queue_capacity) +
                      "\n  overflow_policy = reject"
                      "\n  admission = true";
  text.insert(text.find(anchor) + anchor.size(), attrs);
  return text;
}

std::string scenario_text(int rep) {
  std::string id = "c" + std::to_string(rep);
  return "model app_" + id + " conforms cml\nobject Connection " + id +
         " { state = pending }\n";
}

struct Row {
  double multiplier = 0.0;
  double offered_rps = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t refused = 0;       ///< non-Ok submit_async (door)
  std::uint64_t completed_ok = 0;  ///< callback with Ok
  std::uint64_t failed = 0;        ///< callback with non-Ok
  std::uint64_t late = 0;          ///< Ok callbacks past the deadline
  std::uint64_t shed_expired = 0;
  std::uint64_t shed_predicted = 0;
  std::uint64_t queue_rejections = 0;
  std::uint64_t max_pending = 0;
  std::uint64_t max_bounded_pending = 0;  ///< entry backlog high-water
  double goodput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Result<Row> run_step(const BenchConfig& config, double multiplier,
                     double capacity_rps) {
  core::PlatformConfig platform_config;
  platform_config.dsml = comm::cml_metamodel();
  platform_config.pipeline_threads =
      static_cast<unsigned>(config.pipeline_threads);
  auto assembled = core::Platform::assemble_from_text(
      overload_cvm_text(config), platform_config);
  if (!assembled.ok()) return assembled.status();
  auto platform = std::move(assembled.value());
  MDSM_RETURN_IF_ERROR(platform->add_resource_adapter(
      std::make_unique<SimulatedCommService>(
          "comm", std::chrono::microseconds(config.service_delay_us))));
  MDSM_RETURN_IF_ERROR(platform->start());

  const double offered_rps = multiplier * capacity_rps;
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / offered_rps));
  const int total = static_cast<int>(offered_rps * config.seconds_per_step);
  const Duration deadline = std::chrono::milliseconds(config.deadline_ms);

  std::mutex done_mutex;
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t late = 0;
  std::vector<double> ok_latencies_us;
  ok_latencies_us.reserve(static_cast<std::size_t>(total));
  std::atomic<int> outstanding{0};

  Row row;
  row.multiplier = multiplier;
  row.offered_rps = offered_rps;
  core::SubmitOptions options;
  options.deadline = deadline;

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    const auto enqueued = std::chrono::steady_clock::now();
    ++row.submitted;
    outstanding.fetch_add(1, std::memory_order_relaxed);
    Status queued = platform->submit_async(
        scenario_text(r),
        [&, enqueued](Result<controller::ControlScript> outcome) {
          const double latency_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - enqueued)
                  .count();
          {
            std::lock_guard lock(done_mutex);
            if (outcome.ok()) {
              ++completed_ok;
              ok_latencies_us.push_back(latency_us);
              if (latency_us >
                  static_cast<double>(config.deadline_ms) * 1000.0) {
                ++late;
              }
            } else {
              ++failed;
            }
          }
          outstanding.fetch_sub(1, std::memory_order_relaxed);
        },
        options);
    if (!queued.ok()) {
      ++row.refused;
      outstanding.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  while (outstanding.load(std::memory_order_relaxed) != 0) {
    std::this_thread::yield();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snapshot = platform->metrics().snapshot();
  row.shed_expired = snapshot.counter_value("ui.shed_expired");
  row.shed_predicted = snapshot.counter_value("ui.shed_predicted");
  const core::Platform::PipelineStats stats = platform->pipeline_stats();
  row.queue_rejections = stats.rejections;
  row.max_pending = stats.max_pending;
  row.max_bounded_pending = stats.max_bounded_pending;
  MDSM_RETURN_IF_ERROR(platform->stop());

  row.completed_ok = completed_ok;
  row.failed = failed;
  row.late = late;
  row.goodput_rps = elapsed_s > 0.0
                        ? static_cast<double>(completed_ok) / elapsed_s
                        : 0.0;
  std::sort(ok_latencies_us.begin(), ok_latencies_us.end());
  if (!ok_latencies_us.empty()) {
    row.p50_us = ok_latencies_us[ok_latencies_us.size() / 2];
    row.p99_us = ok_latencies_us[std::min(ok_latencies_us.size() - 1,
                                          ok_latencies_us.size() * 99 / 100)];
  }
  return row;
}

void print_row_json(const Row& row, bool last) {
  std::printf(
      "    {\"multiplier\": %.1f, \"offered_rps\": %.0f, \"submitted\": %llu, "
      "\"refused\": %llu, \"completed_ok\": %llu, \"failed\": %llu, "
      "\"late\": %llu, \"shed_expired\": %llu, \"shed_predicted\": %llu, "
      "\"queue_rejections\": %llu, \"max_pending\": %llu, "
      "\"max_bounded_pending\": %llu, "
      "\"goodput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
      row.multiplier, row.offered_rps,
      static_cast<unsigned long long>(row.submitted),
      static_cast<unsigned long long>(row.refused),
      static_cast<unsigned long long>(row.completed_ok),
      static_cast<unsigned long long>(row.failed),
      static_cast<unsigned long long>(row.late),
      static_cast<unsigned long long>(row.shed_expired),
      static_cast<unsigned long long>(row.shed_predicted),
      static_cast<unsigned long long>(row.queue_rejections),
      static_cast<unsigned long long>(row.max_pending),
      static_cast<unsigned long long>(row.max_bounded_pending),
      row.goodput_rps, row.p50_us, row.p99_us, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.seconds_per_step = 0.2;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      config.seconds_per_step = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
      config.queue_capacity = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-delay-us") == 0 &&
               i + 1 < argc) {
      config.service_delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seconds S] [--capacity N] "
                   "[--service-delay-us D] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  set_log_level(LogLevel::kOff);

  // Nominal capacity of the pipeline: each request costs two service
  // invocations (session signalling + media path) serialized on one of
  // the pipeline workers.
  const double request_cost_s = 2.0 * config.service_delay_us * 1e-6;
  const double capacity_rps =
      static_cast<double>(config.pipeline_threads) / request_cost_s;

  const double multipliers[] = {1.0, 2.0, 4.0, 6.0, 8.0, 10.0};
  std::vector<Row> rows;
  for (double multiplier : multipliers) {
    auto row = run_step(config, multiplier, capacity_rps);
    if (!row.ok()) {
      std::fprintf(stderr, "bench step failed: %s\n",
                   row.status().to_string().c_str());
      return 1;
    }
    rows.push_back(std::move(row.value()));
  }

  double plateau = rows.front().goodput_rps;
  double goodput_10x = rows.back().goodput_rps;
  std::uint64_t total_late = 0;
  std::uint64_t worst_depth = 0;
  if (!config.json_only) {
    std::fprintf(stderr, "%6s %12s %10s %9s %9s %6s %10s %10s %8s\n", "mult",
                 "offered/s", "goodput/s", "refused", "failed", "late",
                 "p99 us", "depth", "cap");
  }
  for (const Row& row : rows) {
    total_late += row.late;
    // The capacity bound governs the entry backlog; continuation hops of
    // the staged pipeline ride above it by design, so the gate checks
    // the bounded gauge.
    worst_depth = std::max(worst_depth, row.max_bounded_pending);
    if (!config.json_only) {
      std::fprintf(stderr,
                   "%6.1f %12.0f %10.1f %9llu %9llu %6llu %10.1f %10llu %8d\n",
                   row.multiplier, row.offered_rps, row.goodput_rps,
                   static_cast<unsigned long long>(row.refused),
                   static_cast<unsigned long long>(row.failed),
                   static_cast<unsigned long long>(row.late), row.p99_us,
                   static_cast<unsigned long long>(row.max_bounded_pending),
                   config.queue_capacity);
    }
  }
  const double retention = plateau > 0.0 ? goodput_10x / plateau : 0.0;
  const bool depth_ok =
      worst_depth <= static_cast<std::uint64_t>(config.queue_capacity);
  const bool pass = depth_ok && total_late == 0 && retention >= 0.8;
  if (!config.json_only) {
    std::fprintf(stderr,
                 "\n10x goodput retention vs 1x plateau: %.2f (target >= "
                 "0.80), late completions: %llu (target 0), max depth %llu "
                 "<= capacity %d: %s\n",
                 retention, static_cast<unsigned long long>(total_late),
                 static_cast<unsigned long long>(worst_depth),
                 config.queue_capacity, depth_ok ? "yes" : "NO");
  }

  std::printf("{\n  \"bench\": \"overload\", \"scenario\": \"cvm_bounded\", "
              "\"pipeline_threads\": %d, \"queue_capacity\": %d, "
              "\"service_delay_us\": %d, \"deadline_ms\": %d, "
              "\"capacity_rps\": %.0f,\n  \"rows\": [\n",
              config.pipeline_threads, config.queue_capacity,
              config.service_delay_us, config.deadline_ms, capacity_rps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row_json(rows[i], i + 1 == rows.size());
  }
  std::printf("  ],\n  \"goodput_retention_10x\": %.3f, "
              "\"late_completions\": %llu, \"max_depth\": %llu, "
              "\"pass\": %s\n}\n",
              retention, static_cast<unsigned long long>(total_late),
              static_cast<unsigned long long>(worst_depth),
              pass ? "true" : "false");
  return pass ? 0 : 1;
}
