// Exp-1 (paper §VII-A): behavioral equivalence of the model-based
// middleware and its handcrafted counterpart — "we were able to validate
// the behavioral equivalence (in terms of the sequence of commands that
// were generated for the underlying resources as a result of model
// interpretation) of the model-based implementations of the middleware
// and their original, handcrafted, counterparts" — for the communication
// and smart microgrid domains.
//
// Prints one row per scenario: commands issued by each implementation
// and the trace-equality verdict.
#include <cstdio>

#include "domains/comm/cvm.hpp"
#include "domains/comm/handcrafted_broker.hpp"
#include "domains/comm/scenarios.hpp"
#include "domains/mgrid/baseline.hpp"
#include "domains/mgrid/mgridvm.hpp"

namespace {

int g_failures = 0;

void row(const std::string& domain, const std::string& scenario,
         std::size_t model_commands, std::size_t handcrafted_commands,
         bool equal) {
  std::printf("| %-13s | %-22s | %11zu | %11zu | %-9s |\n", domain.c_str(),
              scenario.c_str(), model_commands, handcrafted_commands,
              equal ? "EQUAL" : "DIVERGED");
  if (!equal) ++g_failures;
}

void run_comm() {
  for (const mdsm::comm::Scenario& scenario : mdsm::comm::comm_scenarios()) {
    auto cvm = mdsm::comm::make_cvm();
    auto handcrafted = mdsm::comm::make_handcrafted_ncb();
    if (!cvm.ok()) {
      std::printf("CVM assembly failed: %s\n",
                  cvm.status().to_string().c_str());
      ++g_failures;
      return;
    }
    mdsm::Status model_based = mdsm::comm::run_scenario(
        scenario, (*cvm)->platform->broker(), (*cvm)->service,
        (*cvm)->platform->context());
    mdsm::Status baseline =
        mdsm::comm::run_scenario(scenario, handcrafted->broker,
                                 handcrafted->service, handcrafted->context);
    bool equal = model_based.ok() && baseline.ok() &&
                 (*cvm)->platform->trace() == handcrafted->broker.trace();
    row("communication", scenario.name, (*cvm)->platform->trace().size(),
        handcrafted->broker.trace().size(), equal);
  }
}

void run_mgrid() {
  for (const mdsm::mgrid::MgridScenario& scenario :
       mdsm::mgrid::mgrid_scenarios()) {
    auto vm = mdsm::mgrid::make_mgridvm();
    auto baseline = mdsm::mgrid::make_handcrafted_mgrid();
    if (!vm.ok()) {
      std::printf("MGridVM assembly failed: %s\n",
                  vm.status().to_string().c_str());
      ++g_failures;
      return;
    }
    mdsm::Status model_based = mdsm::mgrid::run_mgrid_scenario(
        scenario, (*vm)->platform->broker(), (*vm)->plant,
        (*vm)->platform->context());
    mdsm::Status handcrafted = mdsm::mgrid::run_mgrid_scenario(
        scenario, baseline->broker, baseline->plant, baseline->context);
    bool equal = model_based.ok() && handcrafted.ok() &&
                 (*vm)->platform->trace() == baseline->broker.trace();
    row("microgrid", scenario.name, (*vm)->platform->trace().size(),
        baseline->broker.trace().size(), equal);
  }
}

}  // namespace

int main() {
  std::printf(
      "Exp-1: behavioral equivalence, model-based vs handcrafted broker\n");
  std::printf(
      "| %-13s | %-22s | %-11s | %-11s | %-9s |\n", "domain", "scenario",
      "model cmds", "handc cmds", "verdict");
  std::printf(
      "|---------------|------------------------|-------------|------------"
      "-|-----------|\n");
  run_comm();
  run_mgrid();
  std::printf("\nResult: %s (paper: equivalence held in both domains)\n",
              g_failures == 0 ? "ALL SCENARIOS EQUIVALENT"
                              : "EQUIVALENCE VIOLATED");
  return g_failures == 0 ? 0 : 1;
}
