// Resilience bench: goodput and invoke latency of the Broker layer's
// fault-tolerance path against a chaotic resource, across fault rates and
// policies. Three configurations per fault rate:
//
//   fire_once  — no policy: every injected fault is user-visible
//   retries    — 3 attempts, decorrelated-jitter backoff: transient
//                faults are absorbed at the cost of extra attempts
//   breaker    — retries + circuit breaker: under a hard outage the
//                breaker sheds load by fast-failing instead of burning
//                the full retry budget per invoke
//
// Emits one JSON object. Pass criteria: at a 10% fault rate, retries
// strictly improve goodput over fire-once; under a 100% outage, the
// breaker issues fewer physical attempts per invoke than bare retries.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_layer.hpp"
#include "broker/chaos_adapter.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"

namespace {

using mdsm::Duration;
using mdsm::SteadyClock;
using mdsm::Stopwatch;
namespace broker = mdsm::broker;

/// The well-behaved resource underneath the chaos wrapper.
class EchoAdapter final : public broker::ResourceAdapter {
 public:
  explicit EchoAdapter(std::string name)
      : ResourceAdapter(std::move(name)) {}
  mdsm::Result<mdsm::model::Value> execute(const std::string& command,
                                           const broker::Args&) override {
    return mdsm::model::Value("ok:" + command);
  }
};

struct RunResult {
  double goodput_pct = 0.0;
  double median_us = 0.0;
  double p99_us = 0.0;
  double attempts_per_invoke = 0.0;
};

double percentile(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  auto index = static_cast<std::size_t>(p * static_cast<double>(
                                                samples.size() - 1));
  return samples[index];
}

RunResult run(double fail_rate, const broker::InvocationPolicy* policy,
              int invokes) {
  mdsm::runtime::EventBus bus;
  mdsm::policy::ContextStore store;
  broker::BrokerLayer layer("bench", bus, store);
  broker::ChaosConfig chaos_config;
  chaos_config.fail_rate = fail_rate;
  auto chaos = std::make_unique<broker::ChaosAdapter>(
      std::make_unique<EchoAdapter>("svc"), chaos_config);
  const broker::ChaosAdapter* chaos_view = chaos.get();
  if (!layer.resources().add_adapter(std::move(chaos)).ok()) return {};
  if (policy != nullptr &&
      !layer.resources().set_policy("svc", *policy).ok()) {
    return {};
  }

  static SteadyClock clock;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(invokes));
  int ok = 0;
  for (int i = 0; i < invokes; ++i) {
    mdsm::obs::RequestContext context(clock);
    Stopwatch watch(clock);
    if (layer.resources().invoke("svc", "op", {}, context).ok()) ++ok;
    latencies.push_back(watch.elapsed_ms() * 1000.0);
  }
  RunResult out;
  out.goodput_pct = 100.0 * ok / invokes;
  out.median_us = percentile(latencies, 0.5);
  out.p99_us = percentile(latencies, 0.99);
  out.attempts_per_invoke =
      static_cast<double>(chaos_view->stats().executed) / invokes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mdsm::set_log_level(mdsm::LogLevel::kOff);
  int invokes = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) invokes = 200;
  }

  broker::InvocationPolicy retries;
  retries.max_attempts = 3;
  retries.initial_backoff = Duration(20);
  retries.max_backoff = Duration(200);

  broker::InvocationPolicy with_breaker = retries;
  with_breaker.breaker.window = 16;
  with_breaker.breaker.min_samples = 8;
  with_breaker.breaker.failure_threshold = 0.5;
  with_breaker.breaker.cooldown = Duration(5'000);

  const double fail_rates[] = {0.0, 0.1, 0.3, 1.0};
  std::string rows;
  double goodput_fire_once_10 = 0.0;
  double goodput_retries_10 = 0.0;
  double attempts_retries_outage = 0.0;
  double attempts_breaker_outage = 0.0;
  for (double fail_rate : fail_rates) {
    struct Config {
      const char* name;
      const broker::InvocationPolicy* policy;
    };
    const Config configs[] = {{"fire_once", nullptr},
                              {"retries", &retries},
                              {"breaker", &with_breaker}};
    for (const Config& config : configs) {
      RunResult result = run(fail_rate, config.policy, invokes);
      char row[256];
      std::snprintf(row, sizeof(row),
                    "    {\"fail_rate\": %.2f, \"policy\": \"%s\", "
                    "\"invokes\": %d, \"goodput_pct\": %.2f, "
                    "\"median_us\": %.2f, \"p99_us\": %.2f, "
                    "\"attempts_per_invoke\": %.3f}",
                    fail_rate, config.name, invokes, result.goodput_pct,
                    result.median_us, result.p99_us,
                    result.attempts_per_invoke);
      if (!rows.empty()) rows += ",\n";
      rows += row;
      if (fail_rate == 0.1 && config.policy == nullptr) {
        goodput_fire_once_10 = result.goodput_pct;
      }
      if (fail_rate == 0.1 && config.policy == &retries) {
        goodput_retries_10 = result.goodput_pct;
      }
      if (fail_rate == 1.0 && config.policy == &retries) {
        attempts_retries_outage = result.attempts_per_invoke;
      }
      if (fail_rate == 1.0 && config.policy == &with_breaker) {
        attempts_breaker_outage = result.attempts_per_invoke;
      }
    }
  }

  const bool retries_absorb = goodput_retries_10 > goodput_fire_once_10;
  const bool breaker_sheds =
      attempts_breaker_outage < attempts_retries_outage;
  std::printf(
      "{\n  \"bench\": \"resilience\",\n  \"rows\": [\n%s\n  ],\n"
      "  \"retries_absorb_faults\": %s,\n"
      "  \"breaker_sheds_outage_load\": %s,\n  \"pass\": %s\n}\n",
      rows.c_str(), retries_absorb ? "true" : "false",
      breaker_sheds ? "true" : "false",
      (retries_absorb && breaker_sheds) ? "true" : "false");
  return (retries_absorb && breaker_sheds) ? 0 : 1;
}
