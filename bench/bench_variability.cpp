// Exp-6 (paper §VII-B): separation of concerns + operational variability.
//
// "To test the Controller layer's ability to separate concerns, we
// focused on its execution engine (the domain-independent aspect) to
// operate with DSCs and procedures from both domains without
// modification. In order to test variability, we populated the
// Controller's repository with multiple procedures that matched specific
// DSCs and then measured its ability to choose one execution path
// instead of another based on environmental context."
//
// One ControllerLayer instance is loaded with the communication AND
// microgrid DSK side by side; context flips select different execution
// paths; every generation cycle is timed.
#include <cstdio>

#include "broker/broker_api.hpp"
#include "common/clock.hpp"
#include "controller/controller_layer.hpp"
#include "runtime/event_bus.hpp"

namespace {

using namespace mdsm;
using controller::ControllerLayer;
using controller::Procedure;
using controller::SelectionStrategy;
using model::Value;

class NullBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call&,
                            obs::RequestContext&) override {
    return model::Value(true);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }

 private:
  broker::CommandTrace trace_;
};

Procedure proc(std::string name, std::string dsc, double cost,
               std::string_view guard_text = "",
               std::vector<std::string> deps = {}) {
  Procedure p;
  p.name = std::move(name);
  p.classifier = std::move(dsc);
  p.cost = cost;
  if (!guard_text.empty()) p.guard = *policy::Expression::parse(guard_text);
  p.dependencies = std::move(deps);
  std::vector<controller::Instruction> unit{controller::noop()};
  for (const auto& dep : p.dependencies) {
    unit.push_back(controller::call_dep(dep));
  }
  p.units = {unit};
  return p;
}

/// Communication DSK (media path establishment, direct vs relay).
void load_comm_dsk(ControllerLayer& layer) {
  (void)layer.dscs().add({"media.establish", {}, "comm", ""});
  (void)layer.dscs().add({"net.path", {}, "comm", ""});
  (void)layer.add_procedure(
      proc("media-via-path", "media.establish", 1.0, "", {"net.path"}));
  (void)layer.add_procedure(proc("path-direct", "net.path", 1.0,
                                 "!defined(relay.required)"));
  (void)layer.add_procedure(
      proc("path-relay", "net.path", 4.0, "defined(relay.available)"));
}

/// Microgrid DSK (power dispatch, normal vs eco).
void load_mgrid_dsk(ControllerLayer& layer) {
  (void)layer.dscs().add({"power.dispatch", {}, "mgrid", ""});
  (void)layer.add_procedure(
      proc("dispatch-direct", "power.dispatch", 1.0,
           "grid.mode != \"eco\""));
  (void)layer.add_procedure(
      proc("dispatch-eco", "power.dispatch", 0.5, "grid.mode == \"eco\""));
}

struct Case {
  const char* domain;
  const char* dsc;
  const char* context_key;
  model::Value context_value;
  const char* expected_leaf;  ///< procedure expected somewhere in the IM
};

bool im_contains(const controller::IntentModelNode& node,
                 std::string_view name) {
  if (node.procedure->name == name) return true;
  for (const auto& child : node.children) {
    if (im_contains(*child, name)) return true;
  }
  return false;
}

}  // namespace

int main() {
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  // ONE engine instance, both domains' DSK — no engine modification.
  ControllerLayer layer("shared-engine", broker, bus, context);
  load_comm_dsk(layer);
  load_mgrid_dsk(layer);
  context.set("grid.mode", Value("normal"));

  std::printf("Exp-6: one domain-independent engine, two domains' DSK "
              "(%zu DSCs, %zu procedures)\n\n",
              layer.dscs().size(), layer.repository().size());
  std::printf("| %-9s | %-15s | %-24s | %-18s | %-10s | %-7s |\n", "domain",
              "dsc", "context", "chosen path", "cycle (us)", "verdict");
  std::printf("|-----------|-----------------|--------------------------|"
              "--------------------|------------|---------|\n");

  const Case cases[] = {
      {"comm", "media.establish", "none", model::Value{}, "path-direct"},
      {"comm", "media.establish", "relay.required", Value(true),
       "path-relay"},
      {"mgrid", "power.dispatch", "grid.mode=normal", Value{},
       "dispatch-direct"},
      {"mgrid", "power.dispatch", "grid.mode=eco", Value{}, "dispatch-eco"},
  };
  SteadyClock clock;
  int failures = 0;
  for (const Case& c : cases) {
    // Apply the environmental context for this case.
    if (std::string(c.context_key) == "relay.required") {
      context.set("relay.required", c.context_value);
      context.set("relay.available", Value(true));
    } else if (std::string(c.context_key) == "grid.mode=eco") {
      context.set("grid.mode", Value("eco"));
    } else if (std::string(c.context_key) == "grid.mode=normal") {
      context.set("grid.mode", Value("normal"));
    } else {
      context.erase("relay.required");
      context.erase("relay.available");
    }
    Stopwatch watch(clock);
    auto intent =
        layer.generator().generate(c.dsc, SelectionStrategy::kMinCost);
    double cycle_us = watch.elapsed_ms() * 1000.0;
    if (!intent.ok()) {
      std::printf("| %-9s | %-15s | generation failed: %s\n", c.domain,
                  c.dsc, intent.status().to_string().c_str());
      ++failures;
      continue;
    }
    bool chosen = im_contains(*(*intent)->root, c.expected_leaf);
    bool executed = layer.engine().execute(**intent, {}).ok();
    std::printf("| %-9s | %-15s | %-24s | %-18s | %10.2f | %-7s |\n",
                c.domain, c.dsc, c.context_key, c.expected_leaf, cycle_us,
                chosen && executed ? "OK" : "WRONG");
    if (!chosen || !executed) ++failures;
  }
  std::printf("\nResult: %s (paper: engine operated with both domains' "
              "artifacts without modification; context selected the path)\n",
              failures == 0 ? "VARIABILITY DEMONSTRATED" : "FAILED");
  return failures == 0 ? 0 : 1;
}
