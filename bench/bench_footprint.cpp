// Exp-5 (paper §VII-B): footprint reduction from separating domain
// knowledge (DSK) out of the model of execution.
//
// Paper result: "due to the separation of domain-specific concerns, we
// were able to achieve a reduction in lines of code (from 1402 to 1176)
// resulting in smaller compiled bytecode and execution footprint."
//
// The paper compared two implementations of the same controller (merged
// vs separated). This reproduction never wrote the merged variant of its
// own engine, so the measured analog is the footprint a DOMAIN AUTHOR
// owns under each style, for the two domains that exist in both styles
// in this tree:
//
//   monolithic — the handcrafted per-domain dispatch: imperative C++
//                that must be written, reviewed and *compiled* per
//                domain (src/domains/*/handcrafted_broker.*, and the
//                hand-coded dispatch half of mgrid/baseline.*);
//   separated  — zero imperative C++ per domain; behaviour is the
//                declarative spec inside the domain's middleware model,
//                loaded by the one shared, domain-independent engine.
//
// Alongside LoC, the compiled-artifact sizes are compared: object code
// of the handcrafted dispatch vs the bytes of the declarative spec —
// the analog of the paper's "smaller compiled bytecode".
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "domains/comm/cvm.hpp"
#include "domains/mgrid/mgridvm.hpp"

#ifndef MDSM_SOURCE_DIR
#define MDSM_SOURCE_DIR "."
#endif
#ifndef MDSM_BINARY_DIR
#define MDSM_BINARY_DIR "./build"
#endif

namespace {

std::size_t count_loc(std::string_view text) {
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (!line.empty() && line.front() != '#' &&
        !(line.size() >= 2 && line[0] == '/' && line[1] == '/')) {
      ++lines;
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

std::size_t count_file_loc(const std::string& relative_path) {
  std::ifstream in(std::string(MDSM_SOURCE_DIR) + "/" + relative_path);
  if (!in) return 0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return count_loc(buffer.str());
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  return static_cast<std::size_t>(in.tellg());
}

/// Declarative per-domain spec: broker+controller sections of the
/// middleware model (the synthesis LTS exists under both styles).
std::string_view spec_of(std::string_view middleware_model) {
  std::size_t begin = middleware_model.find("child broker");
  std::size_t end = middleware_model.find("child synthesis");
  if (begin == std::string_view::npos || end == std::string_view::npos ||
      end <= begin) {
    return middleware_model;
  }
  return middleware_model.substr(begin, end - begin);
}

}  // namespace

int main() {
  std::printf("Exp-5: per-domain footprint, monolithic dispatch code vs "
              "separated DSK specs\n\n");

  const std::size_t comm_code =
      count_file_loc("src/domains/comm/handcrafted_broker.cpp") +
      count_file_loc("src/domains/comm/handcrafted_broker.hpp");
  // baseline.* mixes the hand-coded dispatch with scenario definitions;
  // the dispatch is roughly half the file.
  const std::size_t mgrid_code =
      (count_file_loc("src/domains/mgrid/baseline.cpp") +
       count_file_loc("src/domains/mgrid/baseline.hpp")) /
      2;
  const std::string_view comm_spec =
      spec_of(mdsm::comm::cvm_middleware_model_text());
  const std::string_view mgrid_spec =
      spec_of(mdsm::mgrid::mgridvm_middleware_model_text());

  std::printf("imperative C++ a domain author writes and compiles:\n");
  std::printf("| %-13s | %-16s | %-16s |\n", "domain", "monolithic LoC",
              "separated LoC");
  std::printf("|---------------|------------------|------------------|\n");
  std::printf("| %-13s | %16zu | %16d |\n", "communication", comm_code, 0);
  std::printf("| %-13s | %16zu | %16d |\n", "microgrid", mgrid_code, 0);
  std::printf("| %-13s | %16zu | %16d |\n", "total", comm_code + mgrid_code,
              0);
  std::printf("\ndeclarative spec replacing that code (interpreted, not "
              "compiled):\n");
  std::printf("  communication: %zu spec lines, %zu bytes\n",
              count_loc(comm_spec), comm_spec.size());
  std::printf("  microgrid:     %zu spec lines, %zu bytes\n",
              count_loc(mgrid_spec), mgrid_spec.size());

  // Compiled-artifact comparison (the paper's "smaller compiled
  // bytecode"): object code of the handcrafted dispatch vs spec bytes.
  const std::size_t comm_object = file_bytes(
      std::string(MDSM_BINARY_DIR) +
      "/src/domains/comm/CMakeFiles/mdsm_comm.dir/handcrafted_broker.cpp.o");
  if (comm_object > 0) {
    std::printf("\ncompiled footprint, communication domain:\n");
    std::printf("  handcrafted dispatch object code: %zu bytes\n",
                comm_object);
    std::printf("  declarative spec:                 %zu bytes (%.0f%% "
                "smaller)\n",
                comm_spec.size(),
                100.0 * (1.0 - static_cast<double>(comm_spec.size()) /
                                   static_cast<double>(comm_object)));
  }
  std::printf("\n[paper: controller LoC 1402 -> 1176 (~16%% less) with "
              "smaller compiled bytecode; here the per-domain imperative "
              "code drops to zero while the shared engine is written "
              "once, domain-independently]\n");
  if (comm_code == 0) {
    std::printf("(source tree not found at %s — run from the repository)\n",
                MDSM_SOURCE_DIR);
  }
  return 0;
}
