// Exp-3 (paper §VII-B): intent-model generation performance.
//
// Paper setup: "the Controller's repository was populated with metadata
// of 100 curated procedures aimed at achieving optimum dependency
// matching. With this test, the Controller layer was able to complete a
// full generation cycle (IM generation, validation, and selection) in
// under 120 ms, with the average cycle time quickly approaching 1 ms as
// we approached 100000 cycles (equivalent to 100000 sequential requests
// to the Controller)."
//
// We reproduce the setup: 100 procedures in a layered dependency
// structure, one cold full cycle, then 100 000 sequential requests
// through the cached path, printing the running average at decade
// checkpoints. Absolute times are C++/2026-hardware scale; the shape to
// match is cold-cycle ≫ amortized, with the running average collapsing
// toward the warm-path cost as cycles accumulate.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "broker/broker_api.hpp"
#include "common/clock.hpp"
#include "controller/controller_layer.hpp"
#include "runtime/event_bus.hpp"

namespace {

using namespace mdsm;
using controller::ControllerLayer;
using controller::Procedure;
using controller::SelectionStrategy;

class NullBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call&,
                            obs::RequestContext&) override {
    return model::Value(true);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }

 private:
  broker::CommandTrace trace_;
};

/// 100 curated procedures: 5 dependency layers × 5 DSCs per layer ×
/// 4 alternative procedures per DSC. Layer L procedures depend on two
/// DSCs of layer L+1, giving the generator a real (bounded) search
/// space at every request.
void populate_repository(ControllerLayer& layer) {
  constexpr int kLayers = 5;
  constexpr int kDscsPerLayer = 5;
  constexpr int kVariants = 4;
  for (int l = 0; l < kLayers; ++l) {
    for (int d = 0; d < kDscsPerLayer; ++d) {
      (void)layer.dscs().add(
          {"op" + std::to_string(l) + "_" + std::to_string(d),
           controller::DscKind::kOperation, "bench", ""});
    }
  }
  int id = 0;
  for (int l = 0; l < kLayers; ++l) {
    for (int d = 0; d < kDscsPerLayer; ++d) {
      for (int v = 0; v < kVariants; ++v) {
        Procedure p;
        p.name = "proc" + std::to_string(id++);
        p.classifier = "op" + std::to_string(l) + "_" + std::to_string(d);
        p.cost = 1.0 + 0.1 * v + 0.01 * d;
        p.quality = 1.0 - 0.05 * v;
        if (l + 1 < kLayers) {
          p.dependencies = {
              "op" + std::to_string(l + 1) + "_" + std::to_string(d),
              "op" + std::to_string(l + 1) + "_" +
                  std::to_string((d + v) % kDscsPerLayer)};
        }
        std::vector<controller::Instruction> unit{controller::noop()};
        for (const auto& dep : p.dependencies) {
          unit.push_back(controller::call_dep(dep));
        }
        p.units = {unit};
        (void)layer.add_procedure(std::move(p));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  int cycles = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--cycles N]\n", argv[0]);
      return 2;
    }
  }
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  ControllerLayer layer("bench", broker, bus, context);
  populate_repository(layer);
  if (!json_only) {
    std::printf("Exp-3: IM generation with %zu procedures in the repository\n",
                layer.repository().size());
  }

  SteadyClock clock;
  // Cold full cycle: generation + validation + selection, no cache.
  Stopwatch watch(clock);
  auto cold = layer.generator().generate("op0_0", SelectionStrategy::kMinCost);
  double cold_ms = watch.elapsed_ms();
  if (!cold.ok()) {
    std::printf("cold generation failed: %s\n",
                cold.status().to_string().c_str());
    return 1;
  }
  if (!json_only) {
    std::printf("cold full cycle: %.3f ms (IM nodes=%d, configurations "
                "generated=%llu)  [paper: < 120 ms]\n",
                cold_ms, (*cold)->node_count,
                static_cast<unsigned long long>(
                    layer.generator().stats().generated));
  }

  // 100 000 sequential requests, rotating over the five root DSCs.
  const char* roots[] = {"op0_0", "op0_1", "op0_2", "op0_3", "op0_4"};
  if (!json_only) {
    std::printf("\n| %8s | %18s | %18s |\n", "cycles", "running avg (ms)",
                "running avg (us)");
    std::printf("|----------|--------------------|--------------------|\n");
  }
  double total_ms = cold_ms;
  int next_checkpoint = 1;
  for (int cycle = 1; cycle <= cycles; ++cycle) {
    Stopwatch cycle_watch(clock);
    auto intent = layer.generator().generate_cached(
        roots[cycle % 5], SelectionStrategy::kMinCost);
    total_ms += cycle_watch.elapsed_ms();
    if (!intent.ok()) {
      std::printf("cycle %d failed: %s\n", cycle,
                  intent.status().to_string().c_str());
      return 1;
    }
    if (!json_only && (cycle == next_checkpoint || cycle == cycles)) {
      double avg_ms = total_ms / (cycle + 1);
      std::printf("| %8d | %18.6f | %18.3f |\n", cycle, avg_ms,
                  avg_ms * 1000.0);
      next_checkpoint *= 10;
    }
  }
  const auto stats = layer.generator().stats();
  double amortized_us = total_ms / (cycles + 1) * 1000.0;
  if (json_only) {
    std::printf("{\"bench\": \"im_generation\", \"procedures\": %zu, "
                "\"cycles\": %d, \"cold_ms\": %.3f, \"amortized_us\": %.3f, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu}\n",
                layer.repository().size(), cycles, cold_ms, amortized_us,
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses));
  } else {
    std::printf("\ncache hits=%llu misses=%llu  (paper: avg approaches ~1 ms "
                "by 100000 cycles; shape = cold >> amortized)\n",
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses));
  }
  return 0;
}
