// Exp-4 (paper §VII-B): adaptive Controller vs non-adaptive baseline.
//
// Paper result: "while the response time of our Controller layer
// architecture was measurably slower than a previous non-adaptive
// Controller undertaking the same task, scenarios where adaptability was
// beneficial to the task at hand would result in as much as an order of
// magnitude improvement in response time for our adaptive Controller
// layer (approx. 800 ms for our architecture, compared to approx.
// 4000 ms for the older non-adaptable architecture)."
//
// Two phases:
//  A) static task — identical commands, stable context: the adaptive
//     controller pays classification/guard/cache overhead per command;
//     the table-dispatch baseline does not.
//  B) adaptation-beneficial task — the environment flips every episode,
//     requiring different behaviour: the adaptive controller just
//     regenerates an intent model; the non-adaptive controller must
//     stop → rebuild its entire middleware configuration (re-parse and
//     re-assemble the CVM middleware model) → restart.
#include <cstdio>

#include "broker/broker_api.hpp"
#include "common/clock.hpp"
#include "controller/controller_layer.hpp"
#include "controller/static_controller.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "runtime/event_bus.hpp"

namespace {

using namespace mdsm;

class NullBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call&,
                            obs::RequestContext&) override {
    return model::Value(true);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }

 private:
  broker::CommandTrace trace_;
};

/// Domain knowledge used by both controllers: an operation with one
/// wired and one radio realization, selected by the network context.
void load_dsk(controller::ControllerLayer& layer) {
  (void)layer.dscs().add({"deliver", controller::DscKind::kOperation, "", ""});
  controller::Procedure wired;
  wired.name = "deliver-wired";
  wired.classifier = "deliver";
  wired.guard = *policy::Expression::parse("network == \"wired\"");
  wired.units = {{controller::broker_call("path.wired")}};
  controller::Procedure radio;
  radio.name = "deliver-radio";
  radio.classifier = "deliver";
  radio.guard = *policy::Expression::parse("network == \"radio\"");
  radio.units = {{controller::broker_call("path.radio")}};
  (void)layer.add_procedure(std::move(wired));
  (void)layer.add_procedure(std::move(radio));
}

controller::StaticController::DispatchTable table_for(
    const std::string& network) {
  controller::StaticController::DispatchTable table;
  table["deliver"] = {controller::broker_call(
      network == "wired" ? "path.wired" : "path.radio")};
  return table;
}

/// The non-adaptive reload: rebuild the full middleware configuration
/// from its model text (the work a stop-reload-restart actually does),
/// then derive the fresh dispatch table.
Result<controller::StaticController::DispatchTable> expensive_reload(
    const std::string& network) {
  core::PlatformConfig config;
  config.dsml = comm::cml_metamodel();
  auto platform =
      core::Platform::assemble_from_text(comm::cvm_middleware_model_text(),
                                         config);
  if (!platform.ok()) return platform.status();
  return table_for(network);
}

}  // namespace

int main() {
  SteadyClock clock;
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  controller::ControllerLayer adaptive("adaptive", broker, bus, context);
  load_dsk(adaptive);
  controller::StaticController fixed(broker, bus, context);
  fixed.set_table(table_for("wired"));
  context.set("network", model::Value("wired"));

  std::printf("Exp-4: adaptive Controller vs non-adaptive baseline\n\n");

  // ---- Phase A: static task --------------------------------------------
  constexpr int kCommands = 20000;
  Stopwatch watch(clock);
  for (int i = 0; i < kCommands; ++i) {
    (void)adaptive.execute_command({"deliver", {}});
  }
  double adaptive_static_us = watch.elapsed_ms() * 1000.0 / kCommands;
  watch.reset();
  for (int i = 0; i < kCommands; ++i) {
    (void)fixed.execute({"deliver", {}});
  }
  double fixed_static_us = watch.elapsed_ms() * 1000.0 / kCommands;
  std::printf("Phase A — static task (%d identical commands):\n", kCommands);
  std::printf("  adaptive controller:     %8.3f us/command\n",
              adaptive_static_us);
  std::printf("  non-adaptive controller: %8.3f us/command\n",
              fixed_static_us);
  std::printf("  adaptive/non-adaptive:   %8.2fx  [paper: adaptive "
              "'measurably slower' on static work]\n\n",
              adaptive_static_us / fixed_static_us);

  // ---- Phase B: adaptation-beneficial task ------------------------------
  // An episode is what the paper times: the environment changes and the
  // controller must serve the next batch of requests under the new
  // behaviour. The adaptive side regenerates an intent model online; the
  // non-adaptive side must stop → rebuild its middleware configuration →
  // restart before it can serve the batch.
  constexpr int kEpisodes = 20;
  constexpr int kBatch = 100;  ///< requests served per episode
  double adaptive_ms = 0.0;
  double fixed_ms = 0.0;
  for (int episode = 0; episode < kEpisodes; ++episode) {
    const std::string network = episode % 2 == 0 ? "radio" : "wired";
    // Adaptive: context change invalidates the IM cache; the controller
    // re-generates once and serves the batch.
    watch.reset();
    context.set("network", model::Value(network));
    for (int i = 0; i < kBatch; ++i) {
      auto adapted = adaptive.execute_command({"deliver", {}});
      if (!adapted.ok()) {
        std::printf("adaptive episode failed: %s\n",
                    adapted.status().to_string().c_str());
        return 1;
      }
    }
    adaptive_ms += watch.elapsed_ms();
    // Non-adaptive: full reload, then serve the batch.
    watch.reset();
    Status reloaded =
        fixed.reload([&network] { return expensive_reload(network); });
    if (!reloaded.ok()) {
      std::printf("non-adaptive reload failed\n");
      return 1;
    }
    for (int i = 0; i < kBatch; ++i) {
      if (!fixed.execute({"deliver", {}}).ok()) {
        std::printf("non-adaptive episode failed\n");
        return 1;
      }
    }
    fixed_ms += watch.elapsed_ms();
  }
  std::printf("Phase B — adaptation-beneficial task (%d environment flips, "
              "%d requests each):\n", kEpisodes, kBatch);
  std::printf("  adaptive controller:     %10.3f ms total (%.3f ms/episode)\n",
              adaptive_ms, adaptive_ms / kEpisodes);
  std::printf("  non-adaptive (reload):   %10.3f ms total (%.3f ms/episode)\n",
              fixed_ms, fixed_ms / kEpisodes);
  std::printf("  improvement:             %10.1fx  [paper: ~5x, approx. "
              "800 ms vs approx. 4000 ms]\n",
              fixed_ms / adaptive_ms);
  return 0;
}
