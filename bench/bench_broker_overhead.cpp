// Exp-2 (paper §VII-A): raw performance of the model-based Broker layer
// vs the original handcrafted one across the eight multimedia scenarios.
//
// Paper result: "the model-based version spent, on average, 17% more
// time to execute the scenarios than the original version. This overhead
// is a direct consequence of the extra flexibility allowed by the
// model-based approach."
//
// Method: per scenario, build a fresh bundle per repetition (untimed)
// and time only the scenario execution; report per-scenario means and
// the average overhead. Absolute numbers are simulator-scale; the shape
// to compare with the paper is the overhead column.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/clock.hpp"
#include "domains/comm/cvm.hpp"
#include "domains/comm/handcrafted_broker.hpp"
#include "domains/comm/scenarios.hpp"

namespace {

using mdsm::SteadyClock;
using mdsm::Stopwatch;

constexpr int kWarmup = 5;
constexpr int kRepetitions = 60;

double median(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median time (µs) for the model-based broker to run `scenario`.
double time_model_based(const mdsm::comm::Scenario& scenario) {
  SteadyClock clock;
  std::vector<double> samples;
  for (int rep = 0; rep < kWarmup + kRepetitions; ++rep) {
    auto cvm = mdsm::comm::make_cvm();
    if (!cvm.ok()) return -1.0;
    Stopwatch watch(clock);
    mdsm::Status status = mdsm::comm::run_scenario(
        scenario, (*cvm)->platform->broker(), (*cvm)->service,
        (*cvm)->platform->context());
    double elapsed_us = watch.elapsed_ms() * 1000.0;
    if (!status.ok()) return -1.0;
    if (rep >= kWarmup) samples.push_back(elapsed_us);
  }
  return median(samples);
}

double time_handcrafted(const mdsm::comm::Scenario& scenario) {
  SteadyClock clock;
  std::vector<double> samples;
  for (int rep = 0; rep < kWarmup + kRepetitions; ++rep) {
    auto ncb = mdsm::comm::make_handcrafted_ncb();
    Stopwatch watch(clock);
    mdsm::Status status = mdsm::comm::run_scenario(
        scenario, ncb->broker, ncb->service, ncb->context);
    double elapsed_us = watch.elapsed_ms() * 1000.0;
    if (!status.ok()) return -1.0;
    if (rep >= kWarmup) samples.push_back(elapsed_us);
  }
  return median(samples);
}

}  // namespace

int main() {
  std::printf(
      "Exp-2: model-based vs handcrafted broker latency, 8 scenarios\n");
  std::printf("| %-22s | %-14s | %-14s | %-9s |\n", "scenario",
              "model-based us", "handcrafted us", "overhead");
  std::printf(
      "|------------------------|----------------|----------------|--------"
      "---|\n");
  double overhead_sum = 0.0;
  int counted = 0;
  for (const mdsm::comm::Scenario& scenario : mdsm::comm::comm_scenarios()) {
    double model_us = time_model_based(scenario);
    double hand_us = time_handcrafted(scenario);
    if (model_us < 0 || hand_us < 0) {
      std::printf("| %-22s | scenario failed to run                   |\n",
                  scenario.name.c_str());
      continue;
    }
    double overhead = (model_us / hand_us - 1.0) * 100.0;
    overhead_sum += overhead;
    ++counted;
    std::printf("| %-22s | %14.1f | %14.1f | %+8.1f%% |\n",
                scenario.name.c_str(), model_us, hand_us, overhead);
  }
  if (counted > 0) {
    std::printf("\nMean overhead of the model-based broker: %+.1f%% "
                "(paper: ~+17%%)\n",
                overhead_sum / counted);
  }
  return 0;
}
