// Cluster bench (PR 8): does the consistent-hash sharded fleet actually
// scale, and does failover keep the client-facing contract?
//
// Scaling rows: the same CVM platform is deployed as 1/2/4/8 ShardNodes
// behind one ClusterFrontEnd; a feeder offers 1.5x the fleet's nominal
// capacity through a single IngressClient, each request under its own
// session key so the ring spreads the load. Per row we record goodput,
// typed refusals (shard-side admission shedding the overload) and
// p50/p99 of the successful requests. Pass criterion: goodput at 4
// shards >= `--min-scaling` (default 3.0) times goodput at 1 shard.
//
// Failover row: 4 shards at 0.9x capacity; halfway through the feed,
// shard 0 is killed. The front-end's health window trips, admission
// reroutes the victim's sessions to their ring replicas, and each
// in-flight loss fails over once. The per-request ledger then proves
// exactly-once: every submission resolves with one terminal callback —
// no duplicates, no silence.
//
// Replication row: a 2-shard fleet ships a runtime-model tune-up as a
// model::diff ChangeList; we record delta bytes vs the full-model bytes
// a naive re-ship would have cost.
//
// Rebalance row (PR 9): 4 shards at 0.8x capacity with a warm spare
// standing by; at 40% of the feed the spare JOINS (full-model warm-up,
// then the ring flip moves ~1/5 of the keyspace onto it), at 70% shard
// 0 LEAVES (immediate ring flip, drain, retire). Completions are
// timestamped so the row compares the post-resize goodput plateau to
// the pre-join one — the gate demands recovery >= 0.9x — and the
// exactly-once ledger must stay clean across both flips. The moved
// fraction reported by the join is asserted <= ~1/N.
//
// Resume row (PR 10): a 2-shard fleet with checkpoint_interval=1 opens
// probe sessions on shard 0, waits for their checkpoints to land on the
// replica, feeds background load at 0.4x capacity, and kills shard 0 at
// 50%. Each probe close then resumes on the survivor from its
// replicated checkpoint — the gate demands exactly ONE re-executed step
// per session (the teardown; a cold re-run would double it) and a
// post-failover goodput plateau >= 0.9x the pre-kill one.
//
// A driver thread slaves the network's SimClock to real time (as in
// bench_ingress) and doubles as the front-end's housekeeping loop:
// deliver_due() + frontend->maintain() + client->expire_overdue().
//
// Output: human summary on stderr, one JSON document on stdout so
// run_benches.sh can record the rows in BENCH_8.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_front_end.hpp"
#include "cluster/shard_node.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/middleware_metamodel.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "ingress/ingress_client.hpp"
#include "model/text_format.hpp"
#include "net/network.hpp"

namespace {

using namespace mdsm;

/// Thread-safe stand-in for the comm services: each invocation sleeps
/// for the configured service latency. Executions whose object id
/// carries the resume row's "probe" prefix are counted separately —
/// that count is the row's re-execution evidence (a resumed close is
/// ONE teardown; a cold close re-runs the create first).
class SimulatedCommService final : public broker::ResourceAdapter {
 public:
  SimulatedCommService(std::string name, std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    auto it = args.find("id");
    if (it != args.end() && it->second.is_string() &&
        it->second.as_string().rfind("probe", 0) == 0) {
      probe_executions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return model::Value(true);
  }

  [[nodiscard]] std::uint64_t probe_executions() const {
    return probe_executions_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds delay_;
  std::atomic<std::uint64_t> probe_executions_{0};
};

struct BenchConfig {
  int pipeline_threads_per_shard = 2;
  int queue_capacity = 64;
  int service_delay_us = 1500;
  int deadline_ms = 100;
  int wire_latency_us = 100;
  double multiplier = 1.5;        ///< offered load vs fleet capacity
  double seconds_per_step = 1.0;
  double min_scaling = 3.0;       ///< goodput(4 shards) / goodput(1 shard)
  int checkpoint_interval = 0;    ///< session-state cadence attr (0: off)
  bool json_only = false;
};

/// The CVM middleware model with the PR-5 overload attributes spliced
/// into its MiddlewarePlatform root, so overloaded shards shed with
/// typed refusals instead of collapsing.
std::string cluster_cvm_text(const BenchConfig& config) {
  std::string text(comm::cvm_middleware_model_text());
  const std::string anchor = "domain = \"communication\"";
  std::string attrs = "\n  queue_capacity = " +
                      std::to_string(config.queue_capacity) +
                      "\n  overflow_policy = reject"
                      "\n  admission = true";
  if (config.checkpoint_interval > 0) {
    attrs += "\n  checkpoint_interval = " +
             std::to_string(config.checkpoint_interval);
  }
  text.insert(text.find(anchor) + anchor.size(), attrs);
  return text;
}

std::string scenario_text(int rep) {
  std::string id = "c" + std::to_string(rep);
  return "model app_" + id + " conforms cml\nobject Connection " + id +
         " { state = pending }\n";
}

struct Row {
  std::size_t shards = 0;
  double offered_rps = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;  ///< typed refusal replies (shed overload)
  std::uint64_t lost = 0;     ///< client-side reply-lost expiries
  double goodput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Failover-row extras (zero on plain scaling rows).
  std::uint64_t duplicate_callbacks = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t failovers = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t breaker_trips = 0;
};

/// One assembled fleet: N ShardNodes behind a ClusterFrontEnd, plus the
/// driver thread slaving the SimClock to real time.
struct Fleet {
  SimClock sim;
  std::unique_ptr<net::Network> network;
  std::optional<model::Model> middleware;
  std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
  /// Per-shard adapter, launch order (owned by the shard's platform).
  std::vector<SimulatedCommService*> adapters;
  std::unique_ptr<cluster::ClusterFrontEnd> frontend;
  std::unique_ptr<ingress::IngressClient> client;

  std::thread driver;
  std::atomic<bool> stop{false};
  std::atomic<int> kill_shard{-1};  ///< set by the feeder; driver executes
  // Rebalance triggers (PR 9), same pattern: the feeder flags them, the
  // driver performs them between delivery batches.
  std::atomic<bool> join_spare{false};
  std::atomic<int> leave_shard{-1};
  std::string spare_endpoint;  ///< pre-launched node outside the ring

  ~Fleet() {
    if (driver.joinable()) {
      stop.store(true, std::memory_order_release);
      driver.join();
    }
    client.reset();
    frontend.reset();
    nodes.clear();
    network.reset();
  }
};

Result<std::unique_ptr<Fleet>> make_fleet(
    const BenchConfig& config, std::size_t shards,
    cluster::ClusterConfig cluster_config = {},
    std::size_t spare_nodes = 0) {
  auto fleet = std::make_unique<Fleet>();
  auto parsed = model::parse_model(cluster_cvm_text(config),
                                   core::middleware_metamodel());
  if (!parsed.ok()) return parsed.status();
  fleet->middleware.emplace(std::move(parsed.value()));

  net::NetworkConfig network_config;
  network_config.base_latency =
      std::chrono::microseconds(config.wire_latency_us);
  network_config.jitter = Duration(0);
  network_config.drop_rate = 0.0;
  fleet->network = std::make_unique<net::Network>(fleet->sim, network_config);

  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < shards + spare_nodes; ++i) {
    cluster::ShardNodeOptions options;
    options.endpoint = "shard-" + std::to_string(i);
    options.platform_config.dsml = comm::cml_metamodel();
    options.platform_config.pipeline_threads =
        static_cast<unsigned>(config.pipeline_threads_per_shard);
    options.provision = [&config, f = fleet.get()](core::Platform& platform) {
      auto adapter = std::make_unique<SimulatedCommService>(
          "comm", std::chrono::microseconds(config.service_delay_us));
      f->adapters.push_back(adapter.get());
      return platform.add_resource_adapter(std::move(adapter));
    };
    auto node = cluster::ShardNode::launch(*fleet->middleware, *fleet->network,
                                           std::move(options));
    if (!node.ok()) return node.status();
    // Spares run but stay OUT of the front-end's initial ring; a later
    // frontend->join() admits them.
    if (i < shards) {
      endpoints.push_back(node.value()->endpoint_name());
    } else if (fleet->spare_endpoint.empty()) {
      fleet->spare_endpoint = node.value()->endpoint_name();
    }
    fleet->nodes.push_back(std::move(node.value()));
  }

  auto frontend = cluster::ClusterFrontEnd::attach(
      *fleet->network, *fleet->middleware, std::move(endpoints),
      std::move(cluster_config));
  if (!frontend.ok()) return frontend.status();
  fleet->frontend = std::move(frontend.value());

  ingress::IngressClientOptions client_options;
  client_options.endpoint = "bench-client";
  client_options.reply_timeout = std::chrono::seconds(10);
  auto client = ingress::IngressClient::attach(
      *fleet->network, fleet->frontend->endpoint_name(), client_options);
  if (!client.ok()) return client.status();
  fleet->client = std::move(client.value());

  // The driver slaves the SimClock to real time, pumps deliveries, runs
  // the front-end's forward-expiry housekeeping and the client's, and
  // executes a requested shard kill between delivery batches (so the
  // endpoint unbind never races a delivery).
  fleet->driver = std::thread([f = fleet.get()] {
    const auto origin = std::chrono::steady_clock::now();
    Duration advanced{0};
    while (!f->stop.load(std::memory_order_acquire)) {
      const auto target = std::chrono::duration_cast<Duration>(
          std::chrono::steady_clock::now() - origin);
      if (target > advanced) {
        f->sim.advance(target - advanced);
        advanced = target;
      }
      f->network->deliver_due();
      const int victim = f->kill_shard.exchange(-1, std::memory_order_acq_rel);
      if (victim >= 0) f->nodes[static_cast<std::size_t>(victim)]->kill();
      if (f->join_spare.exchange(false, std::memory_order_acq_rel) &&
          !f->spare_endpoint.empty()) {
        (void)f->frontend->join(f->spare_endpoint);
      }
      const int leaver =
          f->leave_shard.exchange(-1, std::memory_order_acq_rel);
      if (leaver >= 0) {
        (void)f->frontend->leave(static_cast<std::size_t>(leaver));
      }
      f->frontend->maintain();
      f->client->expire_overdue();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // Final drain: let every in-flight message and reply land.
    f->sim.advance(std::chrono::seconds(2));
    f->network->run_until_idle();
    f->frontend->maintain();
    f->client->expire_overdue();
  });
  return fleet;
}

/// Per-step ledger: outcome counts, latency percentiles, and the
/// per-request fire counter that proves exactly-once callbacks.
struct Ledger {
  explicit Ledger(std::size_t total) : fires(total) {}

  std::mutex mutex;
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;
  std::uint64_t lost = 0;
  std::vector<double> ok_latencies_us;
  std::vector<std::atomic<std::uint32_t>> fires;
  std::atomic<int> outstanding{0};

  void resolve(std::size_t index, const ingress::RemoteOutcome& outcome,
               double latency_us) {
    if (fires[index].fetch_add(1, std::memory_order_relaxed) == 0) {
      outstanding.fetch_sub(1, std::memory_order_relaxed);
    }
    std::lock_guard lock(mutex);
    if (outcome.status.ok()) {
      ++completed_ok;
      ok_latencies_us.push_back(latency_us);
    } else if (outcome.refusal == "reply-lost") {
      ++lost;
    } else {
      ++refused;
    }
  }

  void finalize(Row& row, double elapsed_s) {
    row.completed_ok = completed_ok;
    row.refused = refused;
    row.lost = lost;
    row.goodput_rps =
        elapsed_s > 0.0 ? static_cast<double>(completed_ok) / elapsed_s : 0.0;
    std::sort(ok_latencies_us.begin(), ok_latencies_us.end());
    if (!ok_latencies_us.empty()) {
      row.p50_us = ok_latencies_us[ok_latencies_us.size() / 2];
      row.p99_us = ok_latencies_us[std::min(
          ok_latencies_us.size() - 1, ok_latencies_us.size() * 99 / 100)];
    }
    for (const auto& count : fires) {
      const std::uint32_t fired = count.load(std::memory_order_relaxed);
      if (fired == 0) ++row.unresolved;
      if (fired > 1) ++row.duplicate_callbacks;
    }
  }
};

/// Offer `multiplier` x fleet capacity for one step; optionally kill
/// `kill_shard` halfway through the feed.
Result<Row> run_step(const BenchConfig& config, std::size_t shards,
                     double multiplier, double shard_capacity_rps,
                     int kill_shard = -1) {
  cluster::ClusterConfig cluster_config;
  if (kill_shard >= 0) {
    // The health window only learns about the dead shard when a lost
    // forward expires; a tight downstream budget lets the breaker trip
    // while the feed is still running, so admission-time rerouting (not
    // just per-request failover) shows up in the row. Alive shards
    // answer well inside 150ms at this load, so no false trips.
    cluster_config.downstream_reply_timeout = std::chrono::milliseconds(150);
  }
  auto fleet = make_fleet(config, shards, std::move(cluster_config));
  if (!fleet.ok()) return fleet.status();

  const double offered_rps =
      multiplier * shard_capacity_rps * static_cast<double>(shards);
  const auto interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  const int total = static_cast<int>(offered_rps * config.seconds_per_step);

  Row row;
  row.shards = shards;
  row.offered_rps = offered_rps;
  Ledger ledger(static_cast<std::size_t>(total));
  ledger.ok_latencies_us.reserve(static_cast<std::size_t>(total));
  ingress::RemoteSubmitOptions options;
  options.deadline = std::chrono::milliseconds(config.deadline_ms);

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    if (kill_shard >= 0 && r == total / 2) {
      fleet.value()->kill_shard.store(kill_shard, std::memory_order_release);
    }
    const auto enqueued = std::chrono::steady_clock::now();
    ++row.submitted;
    ledger.outstanding.fetch_add(1, std::memory_order_relaxed);
    const std::size_t index = static_cast<std::size_t>(r);
    auto submitted = fleet.value()->client->submit(
        "cml", "s" + std::to_string(r), scenario_text(r),
        [&ledger, index, enqueued](const ingress::RemoteOutcome& outcome) {
          ledger.resolve(index, outcome,
                         std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - enqueued)
                             .count());
        },
        options);
    if (!submitted.ok()) {
      ingress::RemoteOutcome failed;
      failed.status = submitted.status();
      ledger.resolve(index, failed, 0.0);
    }
  }
  // Every request resolves: success reply, typed refusal reply, or (only
  // after a shard death) a failover re-run or reply-lost expiry.
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ledger.outstanding.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const cluster::ClusterFrontEnd::Stats frontend_stats =
      fleet.value()->frontend->stats();
  row.failovers = frontend_stats.failovers;
  row.rerouted = frontend_stats.rerouted;
  row.breaker_trips = frontend_stats.breaker_trips;
  fleet.value().reset();  // joins the driver; detach resolves stragglers
  ledger.finalize(row, elapsed_s);
  return row;
}

struct ReplicationRow {
  std::size_t shards = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t full_bytes = 0;
  std::uint64_t acks = 0;
};

struct RebalanceRow {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicate_callbacks = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t leaves_completed = 0;
  std::uint64_t full_sync_acks = 0;
  double moved_fraction = 0.0;  ///< keyspace slice the JOIN migrated
  double pre_join_goodput_rps = 0.0;
  double post_resize_goodput_rps = 0.0;
  double recovery_ratio = 0.0;  ///< post / pre (the >= 0.9 gate)
};

/// OK-completions inside [begin_s, end_s), as a rate.
double window_goodput(const std::vector<double>& ok_times_s, double begin_s,
                      double end_s) {
  if (end_s <= begin_s) return 0.0;
  std::size_t count = 0;
  for (const double t : ok_times_s) {
    if (t >= begin_s && t < end_s) ++count;
  }
  return static_cast<double>(count) / (end_s - begin_s);
}

/// Feed a 4-shard fleet at 0.8x capacity; join the spare at 40% of the
/// feed, retire shard 0 at 70%. Goodput is compared between the
/// pre-join plateau and the post-resize tail.
Result<RebalanceRow> run_rebalance_step(const BenchConfig& config,
                                        double shard_capacity_rps) {
  constexpr std::size_t kShards = 4;
  auto fleet = make_fleet(config, kShards, {}, /*spare_nodes=*/1);
  if (!fleet.ok()) return fleet.status();

  const double offered_rps =
      0.8 * shard_capacity_rps * static_cast<double>(kShards);
  const auto interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  // Twice the per-step budget: the row needs a plateau on each side of
  // the two topology flips.
  const int total =
      static_cast<int>(offered_rps * config.seconds_per_step * 2.0);
  const double feed_s = static_cast<double>(total) * 1e-9 *
                        static_cast<double>(interval.count());
  const int join_at = (total * 2) / 5;
  const int leave_at = (total * 7) / 10;

  RebalanceRow row;
  Ledger ledger(static_cast<std::size_t>(total));
  std::mutex times_mutex;
  std::vector<double> ok_times_s;
  ok_times_s.reserve(static_cast<std::size_t>(total));
  ingress::RemoteSubmitOptions options;
  options.deadline = std::chrono::milliseconds(config.deadline_ms);

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    if (r == join_at) {
      fleet.value()->join_spare.store(true, std::memory_order_release);
    }
    if (r == leave_at) {
      // The join's migration bound, read before the leave overwrites it.
      row.moved_fraction =
          fleet.value()->frontend->last_rebalance_fraction();
      fleet.value()->leave_shard.store(0, std::memory_order_release);
    }
    ++row.submitted;
    ledger.outstanding.fetch_add(1, std::memory_order_relaxed);
    const std::size_t index = static_cast<std::size_t>(r);
    auto submitted = fleet.value()->client->submit(
        "cml", "s" + std::to_string(r), scenario_text(r),
        [&ledger, &times_mutex, &ok_times_s, index,
         start](const ingress::RemoteOutcome& outcome) {
          const double at_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          ledger.resolve(index, outcome, 0.0);
          if (outcome.status.ok()) {
            std::lock_guard lock(times_mutex);
            ok_times_s.push_back(at_s);
          }
        },
        options);
    if (!submitted.ok()) {
      ingress::RemoteOutcome failed;
      failed.status = submitted.status();
      ledger.resolve(index, failed, 0.0);
    }
  }
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ledger.outstanding.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const cluster::ClusterFrontEnd::Stats stats =
      fleet.value()->frontend->stats();
  row.joins_completed = stats.joins_completed;
  row.leaves_completed = stats.leaves_completed;
  row.full_sync_acks = stats.full_sync_acks;
  fleet.value().reset();  // joins the driver; detach resolves stragglers

  Row scratch;
  ledger.finalize(scratch, feed_s);
  row.completed_ok = scratch.completed_ok;
  row.refused = scratch.refused;
  row.lost = scratch.lost;
  row.duplicate_callbacks = scratch.duplicate_callbacks;
  row.unresolved = scratch.unresolved;

  // Plateaus: [10%, 40%) of the feed is untouched by either flip; the
  // tail after 80% has both behind it (the leave flip at 70% is
  // instantaneous — only the drain settles afterwards).
  {
    std::lock_guard lock(times_mutex);
    row.pre_join_goodput_rps =
        window_goodput(ok_times_s, 0.10 * feed_s, 0.40 * feed_s);
    row.post_resize_goodput_rps =
        window_goodput(ok_times_s, 0.80 * feed_s, feed_s);
  }
  row.recovery_ratio =
      row.pre_join_goodput_rps > 0.0
          ? row.post_resize_goodput_rps / row.pre_join_goodput_rps
          : 0.0;
  return row;
}

struct ResumeRow {
  std::uint64_t submitted = 0;  ///< background feed only
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicate_callbacks = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_acks = 0;
  std::uint64_t resumes_shipped = 0;
  std::uint64_t resumes_completed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t probe_sessions = 0;  ///< victim-owned, checkpointed pre-kill
  std::uint64_t probe_ok = 0;        ///< closes that completed after the kill
  /// Survivor-side adapter executions attributable to the probes. Every
  /// close that resumed from its checkpoint is exactly ONE teardown; a
  /// cold re-run doubles it (create + teardown) — so == probe_sessions
  /// is the "re-execute <= 1 step per session" gate.
  std::uint64_t survivor_probe_executions = 0;
  double pre_kill_goodput_rps = 0.0;
  double post_kill_goodput_rps = 0.0;
  double recovery_ratio = 0.0;  ///< post / pre (the >= 0.9 gate)
};

std::string probe_text(int id, const char* state) {
  const std::string name = "probe" + std::to_string(id);
  return "model app_" + name + " conforms cml\nobject Connection " + name +
         " { state = " + state + " }\n";
}

/// Session-resume row (PR 10): a 2-shard fleet with checkpoint_interval=1
/// opens a handful of probe sessions owned by shard 0 and waits for each
/// checkpoint to land on the replica BEFORE any other traffic (so the
/// capture races nothing). A background feed then runs at 0.4x fleet
/// capacity — low enough that the survivor can absorb the whole load —
/// and shard 0 is killed halfway through. After the feed drains, the
/// probe sessions are CLOSED one at a time: each close reroutes/fails
/// over to the survivor, which must import the session's checkpoint
/// first, so the close executes exactly one teardown instead of
/// re-running the session lifecycle cold.
Result<ResumeRow> run_resume_step(const BenchConfig& base,
                                  double shard_capacity_rps) {
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kProbes = 6;
  BenchConfig config = base;
  config.checkpoint_interval = 1;  // checkpoint every completed request
  cluster::ClusterConfig cluster_config;
  // Same rationale as the failover row: tight loss detection so the
  // breaker trips (and rerouting starts) while the feed still runs.
  cluster_config.downstream_reply_timeout = std::chrono::milliseconds(150);
  auto fleet = make_fleet(config, kShards, std::move(cluster_config));
  if (!fleet.ok()) return fleet.status();
  cluster::ClusterFrontEnd& frontend = *fleet.value()->frontend;

  ResumeRow row;
  // Probe ids whose session key hashes onto the shard we will kill.
  std::vector<int> probe_ids;
  for (int id = 0; probe_ids.size() < kProbes && id < 4096; ++id) {
    if (frontend.ring().owner("probe-" + std::to_string(id)) == 0) {
      probe_ids.push_back(id);
    }
  }
  row.probe_sessions = probe_ids.size();

  // One synchronous submit: the resume row's probe traffic is strictly
  // sequential, so a polled flag is all the coordination it needs.
  auto submit_and_wait = [&fleet](const std::string& session,
                                  const std::string& text, bool& ok) {
    std::atomic<int> done{0};  // 0 pending, 1 ok, -1 failed
    ingress::RemoteSubmitOptions options;
    options.deadline = std::chrono::seconds(2);
    auto sent = fleet.value()->client->submit(
        "cml", session, text,
        [&done](const ingress::RemoteOutcome& outcome) {
          done.store(outcome.status.ok() ? 1 : -1,
                     std::memory_order_release);
        },
        options);
    if (!sent.ok()) {
      ok = false;
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (done.load(std::memory_order_acquire) == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ok = done.load(std::memory_order_acquire) == 1;
  };

  // Open every probe and wait until its checkpoint is captured AND the
  // stage-only ship acked on the replica.
  std::uint64_t acks_expected = 0;
  for (const int id : probe_ids) {
    const std::string session = "probe-" + std::to_string(id);
    bool ok = false;
    submit_and_wait(session, probe_text(id, "pending"), ok);
    if (!ok) return Internal("probe open did not complete: " + session);
    ++acks_expected;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((frontend.checkpoint_version(session) < 1 ||
            frontend.stats().checkpoint_acks < acks_expected) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (frontend.checkpoint_version(session) < 1) {
      return Internal("checkpoint never captured for " + session);
    }
  }

  // Background feed at 0.4x fleet capacity (0.8x of the one survivor),
  // shard 0 killed halfway. Long enough that the post-kill plateau is
  // clear of the breaker-trip transient even in --smoke runs.
  const double offered_rps =
      0.4 * shard_capacity_rps * static_cast<double>(kShards);
  const double feed_s = std::max(2.0, config.seconds_per_step);
  const auto interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  const int total = static_cast<int>(offered_rps * feed_s);
  Ledger ledger(static_cast<std::size_t>(total));
  std::mutex times_mutex;
  std::vector<double> ok_times_s;
  ok_times_s.reserve(static_cast<std::size_t>(total));
  ingress::RemoteSubmitOptions options;
  options.deadline = std::chrono::milliseconds(config.deadline_ms);

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    if (r == total / 2) {
      fleet.value()->kill_shard.store(0, std::memory_order_release);
    }
    ++row.submitted;
    ledger.outstanding.fetch_add(1, std::memory_order_relaxed);
    const std::size_t index = static_cast<std::size_t>(r);
    auto submitted = fleet.value()->client->submit(
        "cml", "s" + std::to_string(r), scenario_text(r),
        [&ledger, &times_mutex, &ok_times_s, index,
         start](const ingress::RemoteOutcome& outcome) {
          const double at_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          ledger.resolve(index, outcome, 0.0);
          if (outcome.status.ok()) {
            std::lock_guard lock(times_mutex);
            ok_times_s.push_back(at_s);
          }
        },
        options);
    if (!submitted.ok()) {
      ingress::RemoteOutcome failed;
      failed.status = submitted.status();
      ledger.resolve(index, failed, 0.0);
    }
  }
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ledger.outstanding.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The victim is dead and its breaker open: close the probes one at a
  // time. Sequential on purpose — a resume import wholesale-replaces
  // the survivor's runtime model, so concurrent probe closes would wipe
  // each other's just-imported state.
  for (const int id : probe_ids) {
    bool ok = false;
    submit_and_wait("probe-" + std::to_string(id), probe_text(id, "closed"),
                    ok);
    if (ok) ++row.probe_ok;
  }
  row.survivor_probe_executions =
      fleet.value()->adapters[1]->probe_executions();

  const cluster::ClusterFrontEnd::Stats stats = frontend.stats();
  row.checkpoints_taken = stats.checkpoints_taken;
  row.checkpoint_acks = stats.checkpoint_acks;
  row.resumes_shipped = stats.resumes_shipped;
  row.resumes_completed = stats.resumes_completed;
  row.failovers = stats.failovers;
  row.rerouted = stats.rerouted;
  fleet.value().reset();  // joins the driver; detach resolves stragglers

  Row scratch;
  ledger.finalize(scratch, feed_s);
  row.completed_ok = scratch.completed_ok;
  row.refused = scratch.refused;
  row.lost = scratch.lost;
  row.duplicate_callbacks = scratch.duplicate_callbacks;
  row.unresolved = scratch.unresolved;

  // Plateaus around the 50% kill: [10%, 45%) is untouched; by 70% the
  // breaker has tripped and every victim-arc submit reroutes.
  {
    std::lock_guard lock(times_mutex);
    row.pre_kill_goodput_rps =
        window_goodput(ok_times_s, 0.10 * feed_s, 0.45 * feed_s);
    row.post_kill_goodput_rps =
        window_goodput(ok_times_s, 0.70 * feed_s, feed_s);
  }
  row.recovery_ratio = row.pre_kill_goodput_rps > 0.0
                           ? row.post_kill_goodput_rps /
                                 row.pre_kill_goodput_rps
                           : 0.0;
  return row;
}

/// Ship a runtime-model tune-up (admission knob change) to a 2-shard
/// fleet as a diff and record the bytes a full-model re-ship would have
/// cost instead.
Result<ReplicationRow> measure_replication(const BenchConfig& config) {
  auto fleet = make_fleet(config, 2);
  if (!fleet.ok()) return fleet.status();

  model::Model next = fleet.value()->middleware->clone();
  MDSM_RETURN_IF_ERROR(next.set_attribute(
      "cvm", "queue_capacity",
      model::Value(static_cast<std::int64_t>(config.queue_capacity * 2))));
  MDSM_RETURN_IF_ERROR(
      fleet.value()->frontend->update_model(next));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fleet.value()->frontend->stats().replication_acks < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const cluster::ClusterFrontEnd::Stats stats =
      fleet.value()->frontend->stats();
  ReplicationRow row;
  row.shards = 2;
  row.delta_bytes = stats.delta_bytes;
  row.full_bytes = stats.full_bytes;
  row.acks = stats.replication_acks;
  return row;
}

void print_row_json(const char* kind, const Row& row, bool last) {
  std::printf(
      "    {\"kind\": \"%s\", \"shards\": %zu, \"offered_rps\": %.0f, "
      "\"submitted\": %llu, \"completed_ok\": %llu, \"refused\": %llu, "
      "\"lost\": %llu, \"goodput_rps\": %.1f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"duplicate_callbacks\": %llu, "
      "\"unresolved\": %llu, \"failovers\": %llu, \"rerouted\": %llu, "
      "\"breaker_trips\": %llu}%s\n",
      kind, row.shards, row.offered_rps,
      static_cast<unsigned long long>(row.submitted),
      static_cast<unsigned long long>(row.completed_ok),
      static_cast<unsigned long long>(row.refused),
      static_cast<unsigned long long>(row.lost), row.goodput_rps, row.p50_us,
      row.p99_us, static_cast<unsigned long long>(row.duplicate_callbacks),
      static_cast<unsigned long long>(row.unresolved),
      static_cast<unsigned long long>(row.failovers),
      static_cast<unsigned long long>(row.rerouted),
      static_cast<unsigned long long>(row.breaker_trips), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.seconds_per_step = 0.25;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      config.seconds_per_step = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-delay-us") == 0 &&
               i + 1 < argc) {
      config.service_delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wire-latency-us") == 0 &&
               i + 1 < argc) {
      config.wire_latency_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-scaling") == 0 && i + 1 < argc) {
      config.min_scaling = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seconds S] [--service-delay-us D] "
                   "[--wire-latency-us L] [--min-scaling X] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  set_log_level(LogLevel::kOff);

  // Nominal per-shard capacity: the CVM session-create action behind
  // each Connection scenario costs one comm invocation on one pipeline
  // worker, so a shard sustains threads/delay requests per second. At
  // 1.5x that, every shard is genuinely saturated and sheds the excess
  // as typed refusals — the scaling ratio compares real capacity, not
  // offered load.
  const double request_cost_s = config.service_delay_us * 1e-6;
  const double shard_capacity_rps =
      static_cast<double>(config.pipeline_threads_per_shard) / request_cost_s;

  std::vector<Row> rows;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    auto row =
        run_step(config, shards, config.multiplier, shard_capacity_rps);
    if (!row.ok()) {
      std::fprintf(stderr, "bench step failed (%zu shards): %s\n", shards,
                   row.status().to_string().c_str());
      return 1;
    }
    rows.push_back(std::move(row.value()));
  }
  // Failover: 4 shards comfortably under capacity (so the ledger story
  // is about the dead shard, not shedding), shard 0 dies halfway.
  auto failover = run_step(config, 4, 0.6, shard_capacity_rps, 0);
  if (!failover.ok()) {
    std::fprintf(stderr, "failover step failed: %s\n",
                 failover.status().to_string().c_str());
    return 1;
  }
  auto replication = measure_replication(config);
  if (!replication.ok()) {
    std::fprintf(stderr, "replication step failed: %s\n",
                 replication.status().to_string().c_str());
    return 1;
  }
  auto rebalance = run_rebalance_step(config, shard_capacity_rps);
  if (!rebalance.ok()) {
    std::fprintf(stderr, "rebalance step failed: %s\n",
                 rebalance.status().to_string().c_str());
    return 1;
  }
  auto resume = run_resume_step(config, shard_capacity_rps);
  if (!resume.ok()) {
    std::fprintf(stderr, "resume step failed: %s\n",
                 resume.status().to_string().c_str());
    return 1;
  }

  double goodput_1 = 0.0;
  double goodput_4 = 0.0;
  if (!config.json_only) {
    std::fprintf(stderr, "%6s %12s %10s %10s %9s %7s %10s %10s\n", "shards",
                 "offered/s", "goodput/s", "ok", "refused", "lost", "p50 us",
                 "p99 us");
  }
  for (const Row& row : rows) {
    if (row.shards == 1) goodput_1 = row.goodput_rps;
    if (row.shards == 4) goodput_4 = row.goodput_rps;
    if (!config.json_only) {
      std::fprintf(stderr, "%6zu %12.0f %10.1f %10llu %9llu %7llu %10.1f %10.1f\n",
                   row.shards, row.offered_rps, row.goodput_rps,
                   static_cast<unsigned long long>(row.completed_ok),
                   static_cast<unsigned long long>(row.refused),
                   static_cast<unsigned long long>(row.lost), row.p50_us,
                   row.p99_us);
    }
  }
  const double scaling = goodput_1 > 0.0 ? goodput_4 / goodput_1 : 0.0;
  const Row& fo = failover.value();
  const ReplicationRow& repl = replication.value();
  const RebalanceRow& reb = rebalance.value();
  const bool exactly_once =
      fo.duplicate_callbacks == 0 && fo.unresolved == 0;
  const bool delta_saves = repl.delta_bytes < repl.full_bytes;
  // Elasticity gates (PR 9): both resizes completed mid-feed, callbacks
  // stayed exactly-once, the join moved no more than ~1/5 of the
  // keyspace, and goodput recovered to >= 0.9x the pre-join plateau.
  const bool rebalance_exactly_once =
      reb.duplicate_callbacks == 0 && reb.unresolved == 0;
  const bool rebalance_ok =
      reb.joins_completed == 1 && reb.leaves_completed == 1 &&
      rebalance_exactly_once && reb.moved_fraction <= 1.5 / 5.0 &&
      reb.recovery_ratio >= 0.9;
  const ResumeRow& res = resume.value();
  // Session-resume gates (PR 10): every probe close completed on the
  // survivor with exactly one re-executed step (the teardown — cold
  // re-runs would double the count), the feed's callbacks stayed
  // exactly-once, and post-failover goodput recovered to >= 0.9x the
  // pre-kill plateau.
  const bool resume_exactly_once =
      res.duplicate_callbacks == 0 && res.unresolved == 0;
  const bool resume_ok =
      res.probe_sessions > 0 && res.probe_ok == res.probe_sessions &&
      res.survivor_probe_executions == res.probe_sessions &&
      res.resumes_completed >= res.probe_sessions && resume_exactly_once &&
      res.recovery_ratio >= 0.9;
  const bool pass = scaling >= config.min_scaling && exactly_once &&
                    delta_saves && rebalance_ok && resume_ok;
  if (!config.json_only) {
    std::fprintf(stderr,
                 "\nfailover: ok=%llu refused=%llu lost=%llu dupes=%llu "
                 "unresolved=%llu failovers=%llu rerouted=%llu trips=%llu\n",
                 static_cast<unsigned long long>(fo.completed_ok),
                 static_cast<unsigned long long>(fo.refused),
                 static_cast<unsigned long long>(fo.lost),
                 static_cast<unsigned long long>(fo.duplicate_callbacks),
                 static_cast<unsigned long long>(fo.unresolved),
                 static_cast<unsigned long long>(fo.failovers),
                 static_cast<unsigned long long>(fo.rerouted),
                 static_cast<unsigned long long>(fo.breaker_trips));
    std::fprintf(stderr,
                 "replication: delta=%llu bytes vs full=%llu bytes\n",
                 static_cast<unsigned long long>(repl.delta_bytes),
                 static_cast<unsigned long long>(repl.full_bytes));
    std::fprintf(stderr,
                 "rebalance: pre=%.1f/s post=%.1f/s recovery=%.2fx "
                 "moved=%.3f joins=%llu leaves=%llu dupes=%llu "
                 "unresolved=%llu lost=%llu\n",
                 reb.pre_join_goodput_rps, reb.post_resize_goodput_rps,
                 reb.recovery_ratio, reb.moved_fraction,
                 static_cast<unsigned long long>(reb.joins_completed),
                 static_cast<unsigned long long>(reb.leaves_completed),
                 static_cast<unsigned long long>(reb.duplicate_callbacks),
                 static_cast<unsigned long long>(reb.unresolved),
                 static_cast<unsigned long long>(reb.lost));
    std::fprintf(stderr,
                 "resume: probes=%llu ok=%llu survivor_execs=%llu "
                 "resumed=%llu/%llu ckpts=%llu acks=%llu pre=%.1f/s "
                 "post=%.1f/s recovery=%.2fx dupes=%llu unresolved=%llu\n",
                 static_cast<unsigned long long>(res.probe_sessions),
                 static_cast<unsigned long long>(res.probe_ok),
                 static_cast<unsigned long long>(
                     res.survivor_probe_executions),
                 static_cast<unsigned long long>(res.resumes_completed),
                 static_cast<unsigned long long>(res.resumes_shipped),
                 static_cast<unsigned long long>(res.checkpoints_taken),
                 static_cast<unsigned long long>(res.checkpoint_acks),
                 res.pre_kill_goodput_rps, res.post_kill_goodput_rps,
                 res.recovery_ratio,
                 static_cast<unsigned long long>(res.duplicate_callbacks),
                 static_cast<unsigned long long>(res.unresolved));
    std::fprintf(stderr, "scaling 1->4 shards: %.2fx (target >= %.2fx)\n",
                 scaling, config.min_scaling);
  }

  std::printf("{\n  \"bench\": \"cluster\", \"scenario\": \"cvm_sharded\", "
              "\"pipeline_threads_per_shard\": %d, \"queue_capacity\": %d, "
              "\"service_delay_us\": %d, \"deadline_ms\": %d, "
              "\"wire_latency_us\": %d, \"shard_capacity_rps\": %.0f, "
              "\"multiplier\": %.1f,\n  \"rows\": [\n",
              config.pipeline_threads_per_shard, config.queue_capacity,
              config.service_delay_us, config.deadline_ms,
              config.wire_latency_us, shard_capacity_rps, config.multiplier);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row_json("scaling", rows[i], false);
  }
  print_row_json("failover", fo, true);
  std::printf("  ],\n  \"replication\": {\"shards\": %zu, "
              "\"delta_bytes\": %llu, \"full_bytes\": %llu, "
              "\"acks\": %llu},\n",
              repl.shards, static_cast<unsigned long long>(repl.delta_bytes),
              static_cast<unsigned long long>(repl.full_bytes),
              static_cast<unsigned long long>(repl.acks));
  std::printf(
      "  \"rebalance\": {\"shards\": 4, \"spares\": 1, \"submitted\": %llu, "
      "\"completed_ok\": %llu, \"refused\": %llu, \"lost\": %llu, "
      "\"duplicate_callbacks\": %llu, \"unresolved\": %llu, "
      "\"joins_completed\": %llu, \"leaves_completed\": %llu, "
      "\"full_sync_acks\": %llu, \"moved_fraction\": %.4f, "
      "\"pre_join_goodput_rps\": %.1f, \"post_resize_goodput_rps\": %.1f, "
      "\"recovery_ratio\": %.3f},\n",
      static_cast<unsigned long long>(reb.submitted),
      static_cast<unsigned long long>(reb.completed_ok),
      static_cast<unsigned long long>(reb.refused),
      static_cast<unsigned long long>(reb.lost),
      static_cast<unsigned long long>(reb.duplicate_callbacks),
      static_cast<unsigned long long>(reb.unresolved),
      static_cast<unsigned long long>(reb.joins_completed),
      static_cast<unsigned long long>(reb.leaves_completed),
      static_cast<unsigned long long>(reb.full_sync_acks),
      reb.moved_fraction, reb.pre_join_goodput_rps,
      reb.post_resize_goodput_rps, reb.recovery_ratio);
  std::printf(
      "  \"resume\": {\"shards\": 2, \"checkpoint_interval\": 1, "
      "\"probe_sessions\": %llu, \"probe_ok\": %llu, "
      "\"survivor_probe_executions\": %llu, \"submitted\": %llu, "
      "\"completed_ok\": %llu, \"refused\": %llu, \"lost\": %llu, "
      "\"duplicate_callbacks\": %llu, \"unresolved\": %llu, "
      "\"checkpoints_taken\": %llu, \"checkpoint_acks\": %llu, "
      "\"resumes_shipped\": %llu, \"resumes_completed\": %llu, "
      "\"failovers\": %llu, \"rerouted\": %llu, "
      "\"pre_kill_goodput_rps\": %.1f, \"post_kill_goodput_rps\": %.1f, "
      "\"recovery_ratio\": %.3f},\n",
      static_cast<unsigned long long>(res.probe_sessions),
      static_cast<unsigned long long>(res.probe_ok),
      static_cast<unsigned long long>(res.survivor_probe_executions),
      static_cast<unsigned long long>(res.submitted),
      static_cast<unsigned long long>(res.completed_ok),
      static_cast<unsigned long long>(res.refused),
      static_cast<unsigned long long>(res.lost),
      static_cast<unsigned long long>(res.duplicate_callbacks),
      static_cast<unsigned long long>(res.unresolved),
      static_cast<unsigned long long>(res.checkpoints_taken),
      static_cast<unsigned long long>(res.checkpoint_acks),
      static_cast<unsigned long long>(res.resumes_shipped),
      static_cast<unsigned long long>(res.resumes_completed),
      static_cast<unsigned long long>(res.failovers),
      static_cast<unsigned long long>(res.rerouted),
      res.pre_kill_goodput_rps, res.post_kill_goodput_rps,
      res.recovery_ratio);
  std::printf("  \"scaling_1_to_4\": %.3f, \"min_scaling\": %.2f, "
              "\"failover_exactly_once\": %s, "
              "\"rebalance_exactly_once\": %s, \"rebalance_pass\": %s, "
              "\"resume_pass\": %s, \"pass\": %s\n}\n",
              scaling, config.min_scaling, exactly_once ? "true" : "false",
              rebalance_exactly_once ? "true" : "false",
              rebalance_ok ? "true" : "false", resume_ok ? "true" : "false",
              pass ? "true" : "false");
  return pass ? 0 : 1;
}
