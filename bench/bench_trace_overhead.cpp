// Tracing-overhead bench: latency of Platform::submit_model_text on the
// CVM conference scenario with a real (enabled) RequestContext — span
// tree + metrics recording active — vs the shared noop context, where
// every observability operation early-returns.
//
// Acceptance target: enabling tracing costs < 5% median latency. Emits
// one JSON object so CI and the driver can assert on it.
#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "domains/comm/cvm.hpp"

namespace {

using mdsm::SteadyClock;
using mdsm::Stopwatch;

constexpr int kWarmup = 5;
constexpr int kRepetitions = 80;

constexpr std::string_view kConferenceModel = R"(
model conference conforms cml
object Connection standup {
  state = active
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant bruno { address = "bruno@lab" }
  child participants Participant carla { address = "carla@home" }
  child media Medium voice { kind = audio }
  child media Medium cam { kind = video }
}
)";

double median(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// One submit latency (µs) on a fresh platform (built untimed). With
/// `traced`, the submission runs under a fresh enabled context;
/// otherwise under RequestContext::noop().
double time_one(bool traced) {
  static SteadyClock clock;
  auto cvm = mdsm::comm::make_cvm();
  if (!cvm.ok()) return -1.0;
  mdsm::core::Platform& platform = *(*cvm)->platform;
  mdsm::Result<mdsm::controller::ControlScript> script =
      mdsm::InvalidArgument("not run");
  Stopwatch watch(clock);
  if (traced) {
    mdsm::obs::RequestContext request = platform.make_context();
    script = platform.submit_model_text(kConferenceModel, request);
  } else {
    script = platform.submit_model_text(kConferenceModel,
                                        mdsm::obs::RequestContext::noop());
  }
  double elapsed_us = watch.elapsed_ms() * 1000.0;
  return script.ok() ? elapsed_us : -1.0;
}

}  // namespace

int main() {
  // Interleave the two variants (alternating order each repetition) so
  // machine-load drift over the run hits both sample sets equally
  // instead of masquerading as tracing overhead.
  std::vector<double> enabled_samples;
  std::vector<double> noop_samples;
  for (int rep = 0; rep < kWarmup + kRepetitions; ++rep) {
    const bool traced_first = (rep % 2) == 0;
    double first = time_one(traced_first);
    double second = time_one(!traced_first);
    if (first < 0.0 || second < 0.0) {
      std::printf("{\"bench\": \"trace_overhead\", \"error\": \"run failed\"}\n");
      return 1;
    }
    if (rep < kWarmup) continue;
    enabled_samples.push_back(traced_first ? first : second);
    noop_samples.push_back(traced_first ? second : first);
  }
  double enabled_us = median(enabled_samples);
  double noop_us = median(noop_samples);
  if (enabled_us < 0.0 || noop_us < 0.0) {
    std::printf("{\"bench\": \"trace_overhead\", \"error\": \"run failed\"}\n");
    return 1;
  }
  double overhead_pct = noop_us > 0.0
                            ? (enabled_us - noop_us) / noop_us * 100.0
                            : 0.0;
  std::printf(
      "{\"bench\": \"trace_overhead\", \"scenario\": \"cvm_conference\", "
      "\"repetitions\": %d, \"enabled_us\": %.2f, \"noop_us\": %.2f, "
      "\"overhead_pct\": %.2f, \"target_pct\": 5.0, \"pass\": %s}\n",
      kRepetitions, enabled_us, noop_us, overhead_pct,
      overhead_pct < 5.0 ? "true" : "false");
  return 0;
}
