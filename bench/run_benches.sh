#!/usr/bin/env bash
# PR-10 bench trajectory: runs bench_throughput (serialized/concurrent
# sync rows plus the staged-vs-parked async and in-flight-per-core
# rows in one binary),
# bench_im_generation, bench_trace_overhead, bench_resilience
# (retry/breaker goodput against a chaotic resource), bench_overload
# (goodput/shed-rate/p99 as offered load sweeps 1x-10x of pipeline
# capacity), bench_ingress (in-process vs over-the-wire goodput/p99
# through the networked ingress front-end at 1x/10x), and bench_cluster
# (goodput/p99 at 1/2/4/8 consistent-hash shards behind the cluster
# front-end, the mid-run shard-kill failover row, the diff-based
# replication byte savings, the PR-9 rebalance row — a 5th shard
# joins and a shard leaves mid-feed; gated on exactly-once callbacks,
# moved keyspace <= ~1/5, and post-resize goodput >= 0.9x the pre-join
# plateau, plus 4-shard goodput >= 3x 1-shard, relaxed to 2.5x in smoke
# mode — and the PR-10 session-resume row: checkpointed sessions whose
# owner dies mid-feed must close on the survivor with exactly one
# re-executed step each and post-failover goodput >= 0.9x the pre-kill
# plateau), then composes their JSON outputs into a consolidated
# BENCH_10.json at the repo root.
#
# Usage: bench/run_benches.sh [build-dir] [--smoke]
#   build-dir  defaults to <repo>/build
#   --smoke    small rep counts (CI bit-rot check, numbers not meaningful)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD="$arg" ;;
  esac
done
BENCH_DIR="$BUILD/bench"

for binary in bench_throughput bench_im_generation bench_trace_overhead \
              bench_resilience bench_overload bench_ingress \
              bench_cluster; do
  if [ ! -x "$BENCH_DIR/$binary" ]; then
    echo "missing $BENCH_DIR/$binary — build the repo first" >&2
    exit 1
  fi
done

if [ "$SMOKE" = 1 ]; then
  throughput_json="$("$BENCH_DIR/bench_throughput" --smoke --json)"
  im_json="$("$BENCH_DIR/bench_im_generation" --json --cycles 2000)"
  resilience_json="$("$BENCH_DIR/bench_resilience" --smoke)"
  overload_json="$("$BENCH_DIR/bench_overload" --smoke --json)" || true
  ingress_json="$("$BENCH_DIR/bench_ingress" --smoke --json)" || true
  cluster_json="$("$BENCH_DIR/bench_cluster" --smoke --json --min-scaling 2.5)"
else
  throughput_json="$("$BENCH_DIR/bench_throughput" --json)"
  im_json="$("$BENCH_DIR/bench_im_generation" --json)"
  resilience_json="$("$BENCH_DIR/bench_resilience")"
  overload_json="$("$BENCH_DIR/bench_overload" --json)" || true
  ingress_json="$("$BENCH_DIR/bench_ingress" --json)" || true
  cluster_json="$("$BENCH_DIR/bench_cluster" --json)"
fi
trace_json="$("$BENCH_DIR/bench_trace_overhead")"

OUT="$ROOT/BENCH_10.json"
{
  printf '{\n'
  printf '  "pr": 10,\n'
  printf '  "smoke": %s,\n' "$([ "$SMOKE" = 1 ] && echo true || echo false)"
  printf '  "throughput": %s,\n' "$throughput_json"
  printf '  "im_generation": %s,\n' "$im_json"
  printf '  "trace_overhead": %s,\n' "$trace_json"
  printf '  "resilience": %s,\n' "$resilience_json"
  printf '  "overload": %s,\n' "$overload_json"
  printf '  "ingress": %s,\n' "$ingress_json"
  printf '  "cluster": %s\n' "$cluster_json"
  printf '}\n'
} > "$OUT"
echo "wrote $OUT"
