// Microbenchmarks and ablations (google-benchmark): the per-operation
// costs behind Exp-2/Exp-3/Exp-4, plus ablations of the design choices
// DESIGN.md calls out — Case 1 vs Case 2 dispatch, IM cache on/off,
// guarded vs unguarded action selection, expression evaluation, model
// diff and text parsing.
#include <benchmark/benchmark.h>

#include "broker/broker_layer.hpp"
#include "controller/controller_layer.hpp"
#include "controller/static_controller.hpp"
#include "core/middleware_metamodel.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "model/diff.hpp"
#include "model/text_format.hpp"
#include "policy/expression.hpp"

namespace {

using namespace mdsm;
using model::Value;

class NullBroker : public broker::BrokerApi {
 public:
  using broker::BrokerApi::call;
  Result<model::Value> call(const broker::Call&,
                            obs::RequestContext&) override {
    return model::Value(true);
  }
  [[nodiscard]] const broker::CommandTrace& trace() const override {
    return trace_;
  }

 private:
  broker::CommandTrace trace_;
};

// ------------------------------------------------------------ expression

void BM_ExpressionParse(benchmark::State& state) {
  for (auto _ : state) {
    auto expr = policy::Expression::parse(
        "bandwidth >= 1.5 && mode == \"eco\" || !defined(override)");
    benchmark::DoNotOptimize(expr);
  }
}
BENCHMARK(BM_ExpressionParse);

void BM_ExpressionEvaluate(benchmark::State& state) {
  policy::ContextStore context;
  context.set("bandwidth", Value(2.0));
  context.set("mode", Value("eco"));
  auto expr = policy::Expression::parse(
      "bandwidth >= 1.5 && mode == \"eco\" || !defined(override)");
  for (auto _ : state) {
    auto value = expr->evaluate_bool(context);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_ExpressionEvaluate);

// ----------------------------------------------------------------- model

void BM_ModelDiff(benchmark::State& state) {
  auto mm = comm::cml_metamodel();
  model::Model before("a", mm);
  before.create("Connection", "c1");
  for (int i = 0; i < state.range(0); ++i) {
    std::string id = "p" + std::to_string(i);
    before.create_child("c1", "participants", "Participant", id);
    before.set_attribute(id, "address", Value(id + "@host"));
  }
  model::Model after = before.clone();
  after.set_attribute("c1", "state", Value("active"));
  after.remove("p0");
  for (auto _ : state) {
    auto changes = model::diff(before, after);
    benchmark::DoNotOptimize(changes);
  }
}
BENCHMARK(BM_ModelDiff)->Arg(4)->Arg(32)->Arg(128);

void BM_ModelParseText(benchmark::State& state) {
  constexpr std::string_view text = R"(
model call conforms cml
object Connection c1 {
  state = active
  child participants Participant alice { address = "a" }
  child participants Participant bob { address = "b" }
  child media Medium voice { kind = audio quality = standard }
}
)";
  auto mm = comm::cml_metamodel();
  for (auto _ : state) {
    auto parsed = model::parse_model(text, mm);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ModelParseText);

void BM_MiddlewareModelParse(benchmark::State& state) {
  // The dominant cost of the non-adaptive reload path in Exp-4.
  for (auto _ : state) {
    auto parsed = model::parse_model(comm::cvm_middleware_model_text(),
                                     core::middleware_metamodel());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_MiddlewareModelParse);

// ---------------------------------------------------- broker dispatch

struct BrokerFixtureState {
  runtime::EventBus bus;
  policy::ContextStore context;
  broker::BrokerLayer layer{"b", bus, context};

  BrokerFixtureState() {
    class Echo : public broker::ResourceAdapter {
     public:
      Echo() : ResourceAdapter("r") {}
      Result<model::Value> execute(const std::string&,
                                   const broker::Args&) override {
        return model::Value(true);
      }
    };
    (void)layer.resources().add_adapter(std::make_unique<Echo>());
    broker::Action plain;
    plain.name = "plain";
    plain.steps = {broker::invoke_step("r", "op", {{"id", Value("$id")}})};
    (void)layer.register_action(std::move(plain));
    broker::Action guarded;
    guarded.name = "guarded";
    guarded.guard = *policy::Expression::parse("bandwidth >= 2.0");
    guarded.priority = 5;
    guarded.steps = {broker::invoke_step("r", "op", {{"id", Value("$id")}})};
    (void)layer.register_action(std::move(guarded));
    (void)layer.bind_handler("plain.op", {"plain"});
    (void)layer.bind_handler("guarded.op", {"guarded", "plain"});
    context.set("bandwidth", Value(3.0));
  }
};

void BM_BrokerCallUnguarded(benchmark::State& state) {
  BrokerFixtureState fixture;
  broker::Call call{"plain.op", {{"id", Value("x")}}};
  for (auto _ : state) {
    auto result = fixture.layer.call(call);
    benchmark::DoNotOptimize(result);
  }
  fixture.layer.resources().clear_trace();
}
BENCHMARK(BM_BrokerCallUnguarded);

void BM_BrokerCallGuardedSelection(benchmark::State& state) {
  BrokerFixtureState fixture;
  broker::Call call{"guarded.op", {{"id", Value("x")}}};
  for (auto _ : state) {
    auto result = fixture.layer.call(call);
    benchmark::DoNotOptimize(result);
  }
  fixture.layer.resources().clear_trace();
}
BENCHMARK(BM_BrokerCallGuardedSelection);

// ------------------------------------------------- controller dispatch

struct ControllerFixtureState {
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  controller::ControllerLayer layer{"c", broker, bus, context};
  controller::StaticController fixed{broker, bus, context};

  ControllerFixtureState() {
    (void)layer.dscs().add({"op", {}, "", ""});
    controller::Procedure p;
    p.name = "op-impl";
    p.classifier = "op";
    p.units = {{controller::broker_call("r.op")}};
    (void)layer.add_procedure(std::move(p));
    controller::ControllerAction action;
    action.name = "op-act";
    action.body = {controller::broker_call("r.op")};
    (void)layer.register_action(std::move(action));
    (void)layer.bind_action("op.case1", {"op-act"});
    controller::StaticController::DispatchTable table;
    table["op"] = {controller::broker_call("r.op")};
    fixed.set_table(std::move(table));
  }
};

void BM_ControllerCase1(benchmark::State& state) {
  ControllerFixtureState fixture;
  controller::Command command{"op.case1", {}};
  for (auto _ : state) {
    auto result = fixture.layer.execute_command(command);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ControllerCase1);

void BM_ControllerCase2Cached(benchmark::State& state) {
  ControllerFixtureState fixture;
  controller::Command command{"op", {}};
  for (auto _ : state) {
    auto result = fixture.layer.execute_command(command);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ControllerCase2Cached);

void BM_ControllerCase2NoCache(benchmark::State& state) {
  // Ablation: context churn defeats the IM cache every command.
  ControllerFixtureState fixture;
  controller::Command command{"op", {}};
  std::int64_t tick = 0;
  for (auto _ : state) {
    fixture.context.set("churn", Value(++tick));
    auto result = fixture.layer.execute_command(command);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ControllerCase2NoCache);

void BM_StaticControllerDispatch(benchmark::State& state) {
  ControllerFixtureState fixture;
  controller::Command command{"op", {}};
  for (auto _ : state) {
    auto result = fixture.fixed.execute(command);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_StaticControllerDispatch);

// ------------------------------------------ IM generation scaling sweep

void BM_ImGenerationColdByRepoSize(benchmark::State& state) {
  NullBroker broker;
  runtime::EventBus bus;
  policy::ContextStore context;
  controller::ControllerLayer layer("g", broker, bus, context);
  const int variants = static_cast<int>(state.range(0));
  (void)layer.dscs().add({"root", {}, "", ""});
  (void)layer.dscs().add({"dep", {}, "", ""});
  for (int v = 0; v < variants; ++v) {
    controller::Procedure r;
    r.name = "root" + std::to_string(v);
    r.classifier = "root";
    r.cost = 1.0 + v;
    r.dependencies = {"dep"};
    r.units = {{controller::call_dep("dep")}};
    (void)layer.add_procedure(std::move(r));
    controller::Procedure d;
    d.name = "dep" + std::to_string(v);
    d.classifier = "dep";
    d.cost = 1.0 + v;
    d.units = {{controller::noop()}};
    (void)layer.add_procedure(std::move(d));
  }
  for (auto _ : state) {
    auto intent = layer.generator().generate(
        "root", controller::SelectionStrategy::kMinCost);
    benchmark::DoNotOptimize(intent);
  }
  state.SetLabel(std::to_string(2 * variants) + " procedures");
}
BENCHMARK(BM_ImGenerationColdByRepoSize)->Arg(2)->Arg(8)->Arg(16);

// ------------------------------------------ full-pipeline model updates

void BM_FullPipelineModelUpdate(benchmark::State& state) {
  // End-to-end UI→synthesis→controller→broker cost of one incremental
  // model update (a bandwidth retune) on an established CVM session,
  // scaled by session size.
  auto cvm = comm::make_cvm();
  if (!cvm.ok()) {
    state.SkipWithError("CVM assembly failed");
    return;
  }
  const int participants = static_cast<int>(state.range(0));
  std::string base = "model app conforms cml\nobject Connection c {\n"
                     "  state = active\n";
  for (int i = 0; i < participants; ++i) {
    base += "  child participants Participant p" + std::to_string(i) +
            " { address = \"p" + std::to_string(i) + "@h\" }\n";
  }
  base += "  child media Medium v { kind = audio quality = standard }\n}\n";
  std::string retuned = base;
  auto established = (*cvm)->platform->submit_model_text(base);
  if (!established.ok()) {
    state.SkipWithError("establishment failed");
    return;
  }
  bool low = true;
  for (auto _ : state) {
    std::string next = base;
    auto pos = next.find("quality = standard");
    next.replace(pos, 18, low ? "quality = low     " : "quality = high    ");
    low = !low;
    auto script = (*cvm)->platform->submit_model_text(next);
    benchmark::DoNotOptimize(script);
  }
  state.SetLabel(std::to_string(participants) + " participants");
}
BENCHMARK(BM_FullPipelineModelUpdate)->Arg(2)->Arg(8)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
