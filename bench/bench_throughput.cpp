// Throughput bench for the concurrent request pipeline (PR 3): aggregate
// submissions/sec of Platform::submit_model_text at 1/2/4/8 client
// threads on the CVM comm scenario mix, against a simulated comm service
// with realistic per-invocation latency.
//
// Two synchronous modes measure the tentpole change directly:
//   serialized_baseline — every submission runs under one global mutex,
//     reproducing the pre-PR Platform::submit_mutex_ behaviour where N
//     client threads collapse to single-threaded throughput (resource
//     waits included).
//   concurrent_pipeline — submissions run concurrently; only the
//     synthesis model swap serializes, so client threads overlap their
//     controller work and broker/resource waits.
// A third row drives the same load through submit_async()'s
// Executor-fed N-way pipeline from a single feeder thread.
//
// Output: human summary on stderr, one JSON document on stdout so
// run_benches.sh can record the rows in BENCH_3.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"

namespace {

using namespace mdsm;

/// Bench-local thread-safe stand-in for the comm services: every
/// invocation sleeps for the configured service latency (session
/// signalling / media path setup are network operations in the CVM) and
/// counts itself. No shared mutable state beyond the atomic counter.
class SimulatedCommService final : public broker::ResourceAdapter {
 public:
  SimulatedCommService(std::string name, std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    invocations_.fetch_add(1, std::memory_order_relaxed);
    return model::Value(true);
  }

  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds delay_;
  std::atomic<std::uint64_t> invocations_{0};
};

/// The comm scenario mix: three application-model shapes rotated per
/// request, each with a unique Connection id so every submission drives
/// the full path (synthesis diff -> Case-2 session establishment with
/// IM generation/cache -> Case-1 pass-throughs -> broker -> resource).
std::string scenario_text(int variant, int thread, int rep) {
  std::string id = "c" + std::to_string(thread) + "_" + std::to_string(rep);
  std::string text = "model app_" + id + " conforms cml\n";
  switch (variant % 3) {
    case 0:  // bare session establishment (Case 2, IM cache hot path)
      text += "object Connection " + id + " { state = pending }\n";
      break;
    case 1:  // session + two parties (adds Case-1 pass-through actions)
      text += "object Connection " + id + " {\n  state = pending\n" +
              "  child participants Participant pa_" + id +
              " { address = \"a@net\" }\n" +
              "  child participants Participant pb_" + id +
              " { address = \"b@net\" }\n}\n";
      break;
    default:  // session + party + medium (Case-2 media path w/ dependency)
      text += "object Connection " + id + " {\n  state = pending\n" +
              "  child participants Participant pa_" + id +
              " { address = \"a@net\" }\n" +
              "  child media Medium m_" + id + " { kind = audio }\n}\n";
      break;
  }
  return text;
}

struct BenchConfig {
  int reps_per_thread = 200;
  int service_delay_us = 200;
  bool json_only = false;
};

struct Row {
  std::string mode;
  int threads = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double elapsed_ms = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Result<std::unique_ptr<core::Platform>> make_bench_platform(
    const BenchConfig& config, unsigned pipeline_threads) {
  core::PlatformConfig platform_config;
  platform_config.dsml = comm::cml_metamodel();
  platform_config.pipeline_threads = pipeline_threads;
  auto platform = core::Platform::assemble_from_text(
      comm::cvm_middleware_model_text(), platform_config);
  if (!platform.ok()) return platform.status();
  MDSM_RETURN_IF_ERROR((*platform)->add_resource_adapter(
      std::make_unique<SimulatedCommService>(
          "comm", std::chrono::microseconds(config.service_delay_us))));
  MDSM_RETURN_IF_ERROR((*platform)->start());
  return platform;
}

void finish_row(Row& row, std::vector<double>& latencies_us,
                double elapsed_ms) {
  std::sort(latencies_us.begin(), latencies_us.end());
  row.requests = latencies_us.size();
  row.elapsed_ms = elapsed_ms;
  row.rps = elapsed_ms > 0.0
                ? static_cast<double>(row.requests) / (elapsed_ms / 1000.0)
                : 0.0;
  if (!latencies_us.empty()) {
    row.p50_us = latencies_us[latencies_us.size() / 2];
    row.p99_us = latencies_us[std::min(latencies_us.size() - 1,
                                       latencies_us.size() * 99 / 100)];
  }
}

/// Synchronous mode: `threads` client threads each submit
/// `reps_per_thread` scenario-mix models. With `serialize`, the whole
/// submission (context mint + submit) runs under one global mutex — the
/// pre-PR submit path.
Result<Row> run_sync(const BenchConfig& config, int threads, bool serialize) {
  auto platform = make_bench_platform(config, 1);
  if (!platform.ok()) return platform.status();
  core::Platform& p = **platform;

  SteadyClock clock;
  std::mutex submit_mutex;  // the resurrected global submit lock
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::vector<double>> per_thread(
      static_cast<std::size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& latencies = per_thread[static_cast<std::size_t>(t)];
      latencies.reserve(static_cast<std::size_t>(config.reps_per_thread));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < config.reps_per_thread; ++r) {
        std::string text = scenario_text(t + r, t, r);
        Stopwatch watch(clock);
        bool ok = false;
        if (serialize) {
          std::lock_guard lock(submit_mutex);
          obs::RequestContext request = p.make_context();
          ok = p.submit_model_text(text, request).ok();
        } else {
          obs::RequestContext request = p.make_context();
          ok = p.submit_model_text(text, request).ok();
        }
        latencies.push_back(watch.elapsed_ms() * 1000.0);
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  Stopwatch wall(clock);
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  double elapsed_ms = wall.elapsed_ms();

  Row row;
  row.mode = serialize ? "serialized_baseline" : "concurrent_pipeline";
  row.threads = threads;
  row.failures = failures.load();
  std::vector<double> all;
  for (auto& batch : per_thread) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  finish_row(row, all, elapsed_ms);
  return row;
}

/// Async mode: one feeder enqueues the same aggregate load through
/// submit_async()'s Executor-fed pipeline with `width` workers.
Result<Row> run_async(const BenchConfig& config, int width) {
  auto platform =
      make_bench_platform(config, static_cast<unsigned>(width));
  if (!platform.ok()) return platform.status();
  core::Platform& p = **platform;

  SteadyClock clock;
  const int total = config.reps_per_thread * width;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int completed = 0;
  std::uint64_t failures = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(total));

  Stopwatch wall(clock);
  for (int r = 0; r < total; ++r) {
    TimePoint enqueued = clock.now();
    Status queued = p.submit_async(
        scenario_text(r, width, r),
        [&, enqueued](Result<controller::ControlScript> script) {
          double latency_us =
              std::chrono::duration<double, std::micro>(clock.now() -
                                                        enqueued)
                  .count();
          std::lock_guard lock(done_mutex);
          latencies_us.push_back(latency_us);
          if (!script.ok()) ++failures;
          ++completed;
          done_cv.notify_one();
        });
    if (!queued.ok()) return queued;
  }
  std::unique_lock done(done_mutex);
  done_cv.wait(done, [&] { return completed == total; });
  double elapsed_ms = wall.elapsed_ms();

  Row row;
  row.mode = "async_pipeline";
  row.threads = width;
  row.failures = failures;
  finish_row(row, latencies_us, elapsed_ms);
  return row;
}

void print_row_json(const Row& row, bool last) {
  std::printf("    {\"mode\": \"%s\", \"threads\": %d, \"requests\": %llu, "
              "\"failures\": %llu, \"elapsed_ms\": %.2f, \"rps\": %.1f, "
              "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
              row.mode.c_str(), row.threads,
              static_cast<unsigned long long>(row.requests),
              static_cast<unsigned long long>(row.failures), row.elapsed_ms,
              row.rps, row.p50_us, row.p99_us, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.reps_per_thread = 20;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      config.reps_per_thread = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-delay-us") == 0 &&
               i + 1 < argc) {
      config.service_delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--reps N] [--service-delay-us D] "
                   "[--json]\n",
                   argv[0]);
      return 2;
    }
  }
  set_log_level(LogLevel::kOff);

  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<Row> rows;
  for (bool serialize : {true, false}) {
    for (int threads : thread_counts) {
      auto row = run_sync(config, threads, serialize);
      if (!row.ok()) {
        std::fprintf(stderr, "bench run failed: %s\n",
                     row.status().to_string().c_str());
        return 1;
      }
      rows.push_back(std::move(row.value()));
    }
  }
  auto async_row = run_async(config, 8);
  if (!async_row.ok()) {
    std::fprintf(stderr, "async bench run failed: %s\n",
                 async_row.status().to_string().c_str());
    return 1;
  }
  rows.push_back(std::move(async_row.value()));

  double baseline_8 = 0.0;
  double pipeline_8 = 0.0;
  std::uint64_t total_failures = 0;
  if (!config.json_only) {
    std::fprintf(stderr, "%-22s %8s %10s %12s %10s %10s\n", "mode", "threads",
                 "requests", "req/s", "p50 us", "p99 us");
  }
  for (const Row& row : rows) {
    if (!config.json_only) {
      std::fprintf(stderr, "%-22s %8d %10llu %12.1f %10.1f %10.1f\n",
                   row.mode.c_str(), row.threads,
                   static_cast<unsigned long long>(row.requests), row.rps,
                   row.p50_us, row.p99_us);
    }
    if (row.threads == 8 && row.mode == "serialized_baseline") {
      baseline_8 = row.rps;
    }
    if (row.threads == 8 && row.mode == "concurrent_pipeline") {
      pipeline_8 = row.rps;
    }
    total_failures += row.failures;
  }
  double speedup_8 = baseline_8 > 0.0 ? pipeline_8 / baseline_8 : 0.0;
  if (!config.json_only) {
    std::fprintf(stderr,
                 "\n8-thread aggregate speedup vs serialized baseline: "
                 "%.2fx (target >= 3x)\n",
                 speedup_8);
  }

  std::printf("{\n  \"bench\": \"throughput\", \"scenario\": \"cvm_mix\", "
              "\"service_delay_us\": %d, \"reps_per_thread\": %d,\n"
              "  \"rows\": [\n",
              config.service_delay_us, config.reps_per_thread);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row_json(rows[i], i + 1 == rows.size());
  }
  std::printf("  ],\n  \"speedup_8t\": %.2f, \"target_speedup\": 3.0, "
              "\"pass\": %s\n}\n",
              speedup_8,
              speedup_8 >= 3.0 && total_failures == 0 ? "true" : "false");
  return total_failures == 0 ? 0 : 1;
}
