// Throughput bench for the concurrent request pipeline (PR 3): aggregate
// submissions/sec of Platform::submit_model_text at 1/2/4/8 client
// threads on the CVM comm scenario mix, against a simulated comm service
// with realistic per-invocation latency.
//
// Two synchronous modes measure the tentpole change directly:
//   serialized_baseline — every submission runs under one global mutex,
//     reproducing the pre-PR Platform::submit_mutex_ behaviour where N
//     client threads collapse to single-threaded throughput (resource
//     waits included).
//   concurrent_pipeline — submissions run concurrently; only the
//     synthesis model swap serializes, so client threads overlap their
//     controller work and broker/resource waits.
// Async rows (PR 6) compare the two submit_async() cores under a
// closed-loop feeder (bounded in-flight window, so latency measures the
// pipeline, not open-loop queue buildup):
//   async_parked — the PR-5 pipeline: one worker holds each request
//     end-to-end (staged_pipeline=false).
//   async_staged — the event-driven staged core: each layer hop is a
//     continuation, waits park on the event loop.
// Two in-flight rows measure requests-in-flight-per-core against a
// "device" that completes asynchronously after 5ms: the parked core
// caps in-flight at the worker count; the staged core parks them all.
//
// Output: human summary on stderr, one JSON document on stdout so
// run_benches.sh can record the rows in BENCH_6.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"

namespace {

using namespace mdsm;

/// Bench-local thread-safe stand-in for the comm services: every
/// invocation sleeps for the configured service latency (session
/// signalling / media path setup are network operations in the CVM) and
/// counts itself. No shared mutable state beyond the atomic counter.
class SimulatedCommService final : public broker::ResourceAdapter {
 public:
  SimulatedCommService(std::string name, std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    invocations_.fetch_add(1, std::memory_order_relaxed);
    return model::Value(true);
  }

  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds delay_;
  std::atomic<std::uint64_t> invocations_{0};
};

/// A "device" whose operations take 5ms of wall time but no thread: on
/// the staged path execute_async() parks the request on the platform's
/// event loop and completes from a timer; on the parked path the broker
/// falls back to execute(), which sleeps the worker — exactly the
/// contrast the in-flight rows measure. Tracks the high-water mark of
/// concurrently outstanding operations.
class ParkingCommService final : public broker::ResourceAdapter {
 public:
  ParkingCommService(std::string name, core::Platform** platform,
                     std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), platform_(platform), delay_(delay) {}

  Result<model::Value> execute(const std::string&,
                               const broker::Args&) override {
    enter();
    std::this_thread::sleep_for(delay_);
    leave();
    return model::Value(true);
  }

  void execute_async(const std::string&, const broker::Args&,
                     Completion done) override {
    enter();
    (*platform_)->event_loop()->schedule(
        std::chrono::duration_cast<Duration>(delay_),
        [this, done = std::move(done)] {
          leave();
          done(model::Value(true));
        });
  }

  [[nodiscard]] std::uint64_t max_inflight() const noexcept {
    return max_inflight_.load(std::memory_order_relaxed);
  }

 private:
  void enter() {
    std::uint64_t now = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::uint64_t seen = max_inflight_.load(std::memory_order_relaxed);
    while (now > seen && !max_inflight_.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
  }
  void leave() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

  core::Platform** platform_;
  std::chrono::microseconds delay_;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> max_inflight_{0};
};

/// The comm scenario mix: three application-model shapes rotated per
/// request, each with a unique Connection id so every submission drives
/// the full path (synthesis diff -> Case-2 session establishment with
/// IM generation/cache -> Case-1 pass-throughs -> broker -> resource).
std::string scenario_text(int variant, int thread, int rep) {
  std::string id = "c" + std::to_string(thread) + "_" + std::to_string(rep);
  std::string text = "model app_" + id + " conforms cml\n";
  switch (variant % 3) {
    case 0:  // bare session establishment (Case 2, IM cache hot path)
      text += "object Connection " + id + " { state = pending }\n";
      break;
    case 1:  // session + two parties (adds Case-1 pass-through actions)
      text += "object Connection " + id + " {\n  state = pending\n" +
              "  child participants Participant pa_" + id +
              " { address = \"a@net\" }\n" +
              "  child participants Participant pb_" + id +
              " { address = \"b@net\" }\n}\n";
      break;
    default:  // session + party + medium (Case-2 media path w/ dependency)
      text += "object Connection " + id + " {\n  state = pending\n" +
              "  child participants Participant pa_" + id +
              " { address = \"a@net\" }\n" +
              "  child media Medium m_" + id + " { kind = audio }\n}\n";
      break;
  }
  return text;
}

struct BenchConfig {
  int reps_per_thread = 200;
  int service_delay_us = 200;
  bool json_only = false;
};

struct Row {
  std::string mode;
  int threads = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  double elapsed_ms = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t max_inflight = 0;    ///< in-flight rows only
  double inflight_per_core = 0.0;    ///< max_inflight / pipeline threads
};

Result<std::unique_ptr<core::Platform>> make_bench_platform(
    const BenchConfig& config, unsigned pipeline_threads,
    bool staged = true,
    std::unique_ptr<broker::ResourceAdapter> service = nullptr) {
  core::PlatformConfig platform_config;
  platform_config.dsml = comm::cml_metamodel();
  platform_config.pipeline_threads = pipeline_threads;
  platform_config.staged_pipeline = staged;
  auto platform = core::Platform::assemble_from_text(
      comm::cvm_middleware_model_text(), platform_config);
  if (!platform.ok()) return platform.status();
  if (service == nullptr) {
    service = std::make_unique<SimulatedCommService>(
        "comm", std::chrono::microseconds(config.service_delay_us));
  }
  MDSM_RETURN_IF_ERROR((*platform)->add_resource_adapter(std::move(service)));
  MDSM_RETURN_IF_ERROR((*platform)->start());
  return platform;
}

void finish_row(Row& row, std::vector<double>& latencies_us,
                double elapsed_ms) {
  std::sort(latencies_us.begin(), latencies_us.end());
  row.requests = latencies_us.size();
  row.elapsed_ms = elapsed_ms;
  row.rps = elapsed_ms > 0.0
                ? static_cast<double>(row.requests) / (elapsed_ms / 1000.0)
                : 0.0;
  if (!latencies_us.empty()) {
    row.p50_us = latencies_us[latencies_us.size() / 2];
    row.p99_us = latencies_us[std::min(latencies_us.size() - 1,
                                       latencies_us.size() * 99 / 100)];
  }
}

/// Synchronous mode: `threads` client threads each submit
/// `reps_per_thread` scenario-mix models. With `serialize`, the whole
/// submission (context mint + submit) runs under one global mutex — the
/// pre-PR submit path.
Result<Row> run_sync(const BenchConfig& config, int threads, bool serialize) {
  auto platform = make_bench_platform(config, 1);
  if (!platform.ok()) return platform.status();
  core::Platform& p = **platform;

  SteadyClock clock;
  std::mutex submit_mutex;  // the resurrected global submit lock
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::vector<double>> per_thread(
      static_cast<std::size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& latencies = per_thread[static_cast<std::size_t>(t)];
      latencies.reserve(static_cast<std::size_t>(config.reps_per_thread));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < config.reps_per_thread; ++r) {
        std::string text = scenario_text(t + r, t, r);
        Stopwatch watch(clock);
        bool ok = false;
        if (serialize) {
          std::lock_guard lock(submit_mutex);
          obs::RequestContext request = p.make_context();
          ok = p.submit_model_text(text, request).ok();
        } else {
          obs::RequestContext request = p.make_context();
          ok = p.submit_model_text(text, request).ok();
        }
        latencies.push_back(watch.elapsed_ms() * 1000.0);
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  Stopwatch wall(clock);
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  double elapsed_ms = wall.elapsed_ms();

  Row row;
  row.mode = serialize ? "serialized_baseline" : "concurrent_pipeline";
  row.threads = threads;
  row.failures = failures.load();
  std::vector<double> all;
  for (auto& batch : per_thread) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  finish_row(row, all, elapsed_ms);
  return row;
}

/// Async mode (PR 6): a closed-loop feeder keeps at most 2×width
/// requests in flight through submit_async() — latency then measures
/// the pipeline itself, not the open-loop queue an all-at-once feeder
/// builds. `staged` selects the event-driven core vs the PR-5 parked
/// pipeline.
Result<Row> run_async(const BenchConfig& config, int width, bool staged) {
  auto platform =
      make_bench_platform(config, static_cast<unsigned>(width), staged);
  if (!platform.ok()) return platform.status();
  core::Platform& p = **platform;

  SteadyClock clock;
  const int total = config.reps_per_thread * width;
  const int window = 2 * width;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int completed = 0;
  int inflight = 0;
  std::uint64_t failures = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(total));

  Stopwatch wall(clock);
  for (int r = 0; r < total; ++r) {
    {
      std::unique_lock lock(done_mutex);
      done_cv.wait(lock, [&] { return inflight < window; });
      ++inflight;
    }
    TimePoint enqueued = clock.now();
    Status queued = p.submit_async(
        scenario_text(r, width, r),
        [&, enqueued](Result<controller::ControlScript> script) {
          double latency_us =
              std::chrono::duration<double, std::micro>(clock.now() -
                                                        enqueued)
                  .count();
          std::lock_guard lock(done_mutex);
          latencies_us.push_back(latency_us);
          if (!script.ok()) ++failures;
          ++completed;
          --inflight;
          done_cv.notify_all();
        });
    if (!queued.ok()) return queued;
  }
  std::unique_lock done(done_mutex);
  done_cv.wait(done, [&] { return completed == total; });
  double elapsed_ms = wall.elapsed_ms();

  Row row;
  row.mode = staged ? "async_staged" : "async_parked";
  row.threads = width;
  row.failures = failures;
  finish_row(row, latencies_us, elapsed_ms);
  return row;
}

/// In-flight rows (PR 6): `total` requests against a device that takes
/// 5ms per operation but (on the staged path) no thread — all submitted
/// at once over a small worker pool. The parked core caps concurrent
/// device operations at the worker count; the staged core parks every
/// request on the event loop, so in-flight-per-core is the request
/// count over the pool size.
Result<Row> run_inflight(const BenchConfig& config, bool staged) {
  constexpr unsigned kWorkers = 2;
  const int total = config.reps_per_thread;
  core::Platform* handle = nullptr;
  auto service = std::make_unique<ParkingCommService>(
      "comm", &handle, std::chrono::milliseconds(5));
  ParkingCommService* device = service.get();
  auto platform =
      make_bench_platform(config, kWorkers, staged, std::move(service));
  if (!platform.ok()) return platform.status();
  core::Platform& p = **platform;
  handle = &p;

  SteadyClock clock;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int completed = 0;
  std::uint64_t failures = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(total));

  Stopwatch wall(clock);
  for (int r = 0; r < total; ++r) {
    TimePoint enqueued = clock.now();
    Status queued = p.submit_async(
        scenario_text(r, 1, r),
        [&, enqueued](Result<controller::ControlScript> script) {
          double latency_us =
              std::chrono::duration<double, std::micro>(clock.now() -
                                                        enqueued)
                  .count();
          std::lock_guard lock(done_mutex);
          latencies_us.push_back(latency_us);
          if (!script.ok()) ++failures;
          ++completed;
          done_cv.notify_one();
        });
    if (!queued.ok()) return queued;
  }
  std::unique_lock done(done_mutex);
  done_cv.wait(done, [&] { return completed == total; });
  double elapsed_ms = wall.elapsed_ms();

  Row row;
  row.mode = staged ? "inflight_staged" : "inflight_parked";
  row.threads = static_cast<int>(kWorkers);
  row.failures = failures;
  finish_row(row, latencies_us, elapsed_ms);
  row.max_inflight = device->max_inflight();
  row.inflight_per_core =
      static_cast<double>(row.max_inflight) / static_cast<double>(kWorkers);
  return row;
}

void print_row_json(const Row& row, bool last) {
  std::printf("    {\"mode\": \"%s\", \"threads\": %d, \"requests\": %llu, "
              "\"failures\": %llu, \"elapsed_ms\": %.2f, \"rps\": %.1f, "
              "\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_inflight\": %llu, "
              "\"inflight_per_core\": %.1f}%s\n",
              row.mode.c_str(), row.threads,
              static_cast<unsigned long long>(row.requests),
              static_cast<unsigned long long>(row.failures), row.elapsed_ms,
              row.rps, row.p50_us, row.p99_us,
              static_cast<unsigned long long>(row.max_inflight),
              row.inflight_per_core, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.reps_per_thread = 20;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      config.reps_per_thread = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-delay-us") == 0 &&
               i + 1 < argc) {
      config.service_delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--reps N] [--service-delay-us D] "
                   "[--json]\n",
                   argv[0]);
      return 2;
    }
  }
  set_log_level(LogLevel::kOff);

  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<Row> rows;
  for (bool serialize : {true, false}) {
    for (int threads : thread_counts) {
      auto row = run_sync(config, threads, serialize);
      if (!row.ok()) {
        std::fprintf(stderr, "bench run failed: %s\n",
                     row.status().to_string().c_str());
        return 1;
      }
      rows.push_back(std::move(row.value()));
    }
  }
  for (bool staged : {false, true}) {
    auto async_row = run_async(config, 8, staged);
    if (!async_row.ok()) {
      std::fprintf(stderr, "async bench run failed: %s\n",
                   async_row.status().to_string().c_str());
      return 1;
    }
    rows.push_back(std::move(async_row.value()));
    auto inflight_row = run_inflight(config, staged);
    if (!inflight_row.ok()) {
      std::fprintf(stderr, "inflight bench run failed: %s\n",
                   inflight_row.status().to_string().c_str());
      return 1;
    }
    rows.push_back(std::move(inflight_row.value()));
  }

  double baseline_8 = 0.0;
  double pipeline_8 = 0.0;
  double staged_p50_us = 0.0;
  std::uint64_t total_failures = 0;
  if (!config.json_only) {
    std::fprintf(stderr, "%-22s %8s %10s %12s %10s %10s\n", "mode", "threads",
                 "requests", "req/s", "p50 us", "p99 us");
  }
  for (const Row& row : rows) {
    if (!config.json_only) {
      std::fprintf(stderr, "%-22s %8d %10llu %12.1f %10.1f %10.1f\n",
                   row.mode.c_str(), row.threads,
                   static_cast<unsigned long long>(row.requests), row.rps,
                   row.p50_us, row.p99_us);
    }
    if (row.threads == 8 && row.mode == "serialized_baseline") {
      baseline_8 = row.rps;
    }
    if (row.threads == 8 && row.mode == "concurrent_pipeline") {
      pipeline_8 = row.rps;
    }
    if (row.mode == "async_staged") {
      staged_p50_us = row.p50_us;
    }
    total_failures += row.failures;
  }
  double speedup_8 = baseline_8 > 0.0 ? pipeline_8 / baseline_8 : 0.0;
  if (!config.json_only) {
    std::fprintf(stderr,
                 "\n8-thread aggregate speedup vs serialized baseline: "
                 "%.2fx (target >= 3x)\n",
                 speedup_8);
    std::fprintf(stderr,
                 "async staged p50 at 8 pipeline threads: %.1f us "
                 "(guard < 10000)\n",
                 staged_p50_us);
  }

  std::printf("{\n  \"bench\": \"throughput\", \"scenario\": \"cvm_mix\", "
              "\"service_delay_us\": %d, \"reps_per_thread\": %d,\n"
              "  \"rows\": [\n",
              config.service_delay_us, config.reps_per_thread);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row_json(rows[i], i + 1 == rows.size());
  }
  const bool p50_ok = staged_p50_us > 0.0 && staged_p50_us < 10'000.0;
  std::printf("  ],\n  \"speedup_8t\": %.2f, \"target_speedup\": 3.0,\n"
              "  \"async_staged_p50_us\": %.1f, \"p50_guard_us\": 10000,\n"
              "  \"pass\": %s\n}\n",
              speedup_8, staged_p50_us,
              speedup_8 >= 3.0 && p50_ok && total_failures == 0 ? "true"
                                                                : "false");
  return total_failures == 0 && p50_ok ? 0 : 1;
}
