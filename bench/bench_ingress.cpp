// Ingress bench (PR 7): what does the networked front-end cost? The same
// CVM platform is loaded two ways at each offered-load multiplier —
//
//   in-process:    a feeder thread calls submit_async() directly
//                  (the PR-5/PR-6 baseline);
//   over-the-wire: an IngressClient submits through the simulated
//                  network into an IngressServer, whose router +
//                  middleware chain hand the request to the same
//                  submit_async(), and every outcome travels back as a
//                  typed reply.
//
// A driver thread slaves the network's SimClock to real time, so wire
// latency (100us each way here) and codec/routing overhead show up in
// the measured latencies exactly once. Per (mode, multiplier) we record
// goodput, typed-refusal counts and p50/p99 of the successful requests.
//
// Pass criterion (recorded in BENCH_7.json): over-the-wire goodput at 1x
// stays within 70% of in-process goodput at 1x — the front-end may tax
// each request with codec + two hops, but it must not throttle a
// pipeline that is keeping up. At 10x both deployments shed via the
// PR-5 admission gates; the wire rows show the refusals arriving as
// typed replies instead of silence.
//
// Output: human summary on stderr, one JSON document on stdout so
// run_benches.sh can record the rows in BENCH_7.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/ingress_server.hpp"
#include "net/network.hpp"

namespace {

using namespace mdsm;

/// Thread-safe stand-in for the comm services: each invocation sleeps
/// for the configured service latency.
class SimulatedCommService final : public broker::ResourceAdapter {
 public:
  SimulatedCommService(std::string name, std::chrono::microseconds delay)
      : ResourceAdapter(std::move(name)), delay_(delay) {}

  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return model::Value(true);
  }

 private:
  std::chrono::microseconds delay_;
};

struct BenchConfig {
  int pipeline_threads = 4;
  int queue_capacity = 64;
  int service_delay_us = 300;
  int deadline_ms = 25;
  int wire_latency_us = 100;
  double seconds_per_step = 1.0;
  bool json_only = false;
};

/// The CVM middleware model with the PR-5 overload attributes spliced
/// into its MiddlewarePlatform root, so both deployments shed instead of
/// collapsing at 10x.
std::string ingress_cvm_text(const BenchConfig& config) {
  std::string text(comm::cvm_middleware_model_text());
  const std::string anchor = "domain = \"communication\"";
  std::string attrs = "\n  queue_capacity = " +
                      std::to_string(config.queue_capacity) +
                      "\n  overflow_policy = reject"
                      "\n  admission = true";
  text.insert(text.find(anchor) + anchor.size(), attrs);
  return text;
}

std::string scenario_text(int rep) {
  std::string id = "c" + std::to_string(rep);
  return "model app_" + id + " conforms cml\nobject Connection " + id +
         " { state = pending }\n";
}

enum class Mode { kInProcess, kOverTheWire };

struct Row {
  Mode mode = Mode::kInProcess;
  double multiplier = 0.0;
  double offered_rps = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;  ///< door refusals + typed refusal replies
  double goodput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Result<std::unique_ptr<core::Platform>> make_platform(
    const BenchConfig& config) {
  core::PlatformConfig platform_config;
  platform_config.dsml = comm::cml_metamodel();
  platform_config.pipeline_threads =
      static_cast<unsigned>(config.pipeline_threads);
  auto assembled = core::Platform::assemble_from_text(
      ingress_cvm_text(config), platform_config);
  if (!assembled.ok()) return assembled.status();
  auto platform = std::move(assembled.value());
  MDSM_RETURN_IF_ERROR(platform->add_resource_adapter(
      std::make_unique<SimulatedCommService>(
          "comm", std::chrono::microseconds(config.service_delay_us))));
  MDSM_RETURN_IF_ERROR(platform->start());
  return platform;
}

/// Shared per-step ledger; finalizes goodput and percentiles.
struct Ledger {
  std::mutex mutex;
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;
  std::vector<double> ok_latencies_us;
  std::atomic<int> outstanding{0};

  void resolve(bool ok, double latency_us) {
    {
      std::lock_guard lock(mutex);
      if (ok) {
        ++completed_ok;
        ok_latencies_us.push_back(latency_us);
      } else {
        ++refused;
      }
    }
    outstanding.fetch_sub(1, std::memory_order_relaxed);
  }

  void finalize(Row& row, double elapsed_s) {
    row.completed_ok = completed_ok;
    row.refused = refused;
    row.goodput_rps =
        elapsed_s > 0.0 ? static_cast<double>(completed_ok) / elapsed_s : 0.0;
    std::sort(ok_latencies_us.begin(), ok_latencies_us.end());
    if (!ok_latencies_us.empty()) {
      row.p50_us = ok_latencies_us[ok_latencies_us.size() / 2];
      row.p99_us = ok_latencies_us[std::min(
          ok_latencies_us.size() - 1, ok_latencies_us.size() * 99 / 100)];
    }
  }
};

Result<Row> run_in_process(const BenchConfig& config, double multiplier,
                           double capacity_rps) {
  auto platform = make_platform(config);
  if (!platform.ok()) return platform.status();

  const double offered_rps = multiplier * capacity_rps;
  const auto interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  const int total = static_cast<int>(offered_rps * config.seconds_per_step);

  Row row;
  row.mode = Mode::kInProcess;
  row.multiplier = multiplier;
  row.offered_rps = offered_rps;
  Ledger ledger;
  ledger.ok_latencies_us.reserve(static_cast<std::size_t>(total));
  core::SubmitOptions options;
  options.deadline = std::chrono::milliseconds(config.deadline_ms);

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    const auto enqueued = std::chrono::steady_clock::now();
    ++row.submitted;
    ledger.outstanding.fetch_add(1, std::memory_order_relaxed);
    Status queued = platform.value()->submit_async(
        scenario_text(r),
        [&ledger, enqueued](Result<controller::ControlScript> outcome) {
          ledger.resolve(outcome.ok(),
                         std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - enqueued)
                             .count());
        },
        options);
    if (!queued.ok()) ledger.resolve(false, 0.0);
  }
  while (ledger.outstanding.load(std::memory_order_relaxed) != 0) {
    std::this_thread::yield();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MDSM_RETURN_IF_ERROR(platform.value()->stop());
  ledger.finalize(row, elapsed_s);
  return row;
}

Result<Row> run_over_the_wire(const BenchConfig& config, double multiplier,
                              double capacity_rps) {
  auto platform = make_platform(config);
  if (!platform.ok()) return platform.status();

  SimClock sim;
  net::NetworkConfig network_config;
  network_config.base_latency =
      std::chrono::microseconds(config.wire_latency_us);
  network_config.jitter = Duration(0);
  network_config.drop_rate = 0.0;
  net::Network network(sim, network_config);

  auto server = ingress::IngressServer::attach(*platform.value(), network);
  if (!server.ok()) return server.status();
  auto client =
      ingress::IngressClient::attach(network, server.value()->endpoint_name());
  if (!client.ok()) return client.status();

  // The driver slaves the SimClock to real time and pumps deliveries:
  // requests into the server's handler, replies back into the client's.
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    // Tracking an absolute target avoids accumulating truncation drift.
    const auto origin = std::chrono::steady_clock::now();
    Duration advanced{0};
    while (!stop.load(std::memory_order_acquire)) {
      const auto target = std::chrono::duration_cast<Duration>(
          std::chrono::steady_clock::now() - origin);
      if (target > advanced) {
        sim.advance(target - advanced);
        advanced = target;
      }
      network.deliver_due();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // Final drain: let every in-flight message and reply land.
    sim.advance(std::chrono::seconds(1));
    network.run_until_idle();
  });

  const double offered_rps = multiplier * capacity_rps;
  const auto interval =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  const int total = static_cast<int>(offered_rps * config.seconds_per_step);

  Row row;
  row.mode = Mode::kOverTheWire;
  row.multiplier = multiplier;
  row.offered_rps = offered_rps;
  Ledger ledger;
  ledger.ok_latencies_us.reserve(static_cast<std::size_t>(total));
  ingress::RemoteSubmitOptions options;
  options.deadline = std::chrono::milliseconds(config.deadline_ms);

  const auto start = std::chrono::steady_clock::now();
  auto next_at = start;
  for (int r = 0; r < total; ++r) {
    std::this_thread::sleep_until(next_at);
    next_at += interval;
    const auto enqueued = std::chrono::steady_clock::now();
    ++row.submitted;
    ledger.outstanding.fetch_add(1, std::memory_order_relaxed);
    auto submitted = client.value()->submit(
        "cml", "s" + std::to_string(r), scenario_text(r),
        [&ledger, enqueued](const ingress::RemoteOutcome& outcome) {
          ledger.resolve(outcome.status.ok(),
                         std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - enqueued)
                             .count());
        },
        options);
    if (!submitted.ok()) ledger.resolve(false, 0.0);
  }
  // Every request resolves: success reply, typed refusal reply, or (with
  // a lossless link, only if something went badly wrong) expiry.
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ledger.outstanding.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < wall_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (ledger.outstanding.load(std::memory_order_relaxed) != 0) {
    sim.advance(std::chrono::minutes(10));
    client.value()->expire_overdue();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  MDSM_RETURN_IF_ERROR(platform.value()->stop());
  stop.store(true, std::memory_order_release);
  driver.join();
  client.value().reset();
  server.value().reset();
  ledger.finalize(row, elapsed_s);
  return row;
}

void print_row_json(const Row& row, bool last) {
  std::printf(
      "    {\"mode\": \"%s\", \"multiplier\": %.1f, \"offered_rps\": %.0f, "
      "\"submitted\": %llu, \"completed_ok\": %llu, \"refused\": %llu, "
      "\"goodput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
      row.mode == Mode::kInProcess ? "in-process" : "wire", row.multiplier,
      row.offered_rps, static_cast<unsigned long long>(row.submitted),
      static_cast<unsigned long long>(row.completed_ok),
      static_cast<unsigned long long>(row.refused), row.goodput_rps,
      row.p50_us, row.p99_us, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.seconds_per_step = 0.2;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      config.seconds_per_step = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-delay-us") == 0 &&
               i + 1 < argc) {
      config.service_delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wire-latency-us") == 0 &&
               i + 1 < argc) {
      config.wire_latency_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seconds S] [--service-delay-us D] "
                   "[--wire-latency-us L] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  set_log_level(LogLevel::kOff);

  // Nominal pipeline capacity, as in bench_overload: each request costs
  // two serialized service invocations on one worker.
  const double request_cost_s = 2.0 * config.service_delay_us * 1e-6;
  const double capacity_rps =
      static_cast<double>(config.pipeline_threads) / request_cost_s;

  const double multipliers[] = {1.0, 10.0};
  std::vector<Row> rows;
  for (double multiplier : multipliers) {
    for (Mode mode : {Mode::kInProcess, Mode::kOverTheWire}) {
      auto row = mode == Mode::kInProcess
                     ? run_in_process(config, multiplier, capacity_rps)
                     : run_over_the_wire(config, multiplier, capacity_rps);
      if (!row.ok()) {
        std::fprintf(stderr, "bench step failed: %s\n",
                     row.status().to_string().c_str());
        return 1;
      }
      rows.push_back(std::move(row.value()));
    }
  }

  double inproc_1x = 0.0;
  double wire_1x = 0.0;
  if (!config.json_only) {
    std::fprintf(stderr, "%12s %6s %12s %10s %10s %9s %10s %10s\n", "mode",
                 "mult", "offered/s", "goodput/s", "ok", "refused", "p50 us",
                 "p99 us");
  }
  for (const Row& row : rows) {
    if (row.multiplier == 1.0 && row.mode == Mode::kInProcess) {
      inproc_1x = row.goodput_rps;
    }
    if (row.multiplier == 1.0 && row.mode == Mode::kOverTheWire) {
      wire_1x = row.goodput_rps;
    }
    if (!config.json_only) {
      std::fprintf(
          stderr, "%12s %6.1f %12.0f %10.1f %10llu %9llu %10.1f %10.1f\n",
          row.mode == Mode::kInProcess ? "in-process" : "wire", row.multiplier,
          row.offered_rps, row.goodput_rps,
          static_cast<unsigned long long>(row.completed_ok),
          static_cast<unsigned long long>(row.refused), row.p50_us,
          row.p99_us);
    }
  }
  const double ratio = inproc_1x > 0.0 ? wire_1x / inproc_1x : 0.0;
  const bool pass = ratio >= 0.7;
  if (!config.json_only) {
    std::fprintf(stderr,
                 "\nwire goodput at 1x vs in-process: %.2f (target >= 0.70)\n",
                 ratio);
  }

  std::printf("{\n  \"bench\": \"ingress\", \"scenario\": \"cvm_split\", "
              "\"pipeline_threads\": %d, \"queue_capacity\": %d, "
              "\"service_delay_us\": %d, \"deadline_ms\": %d, "
              "\"wire_latency_us\": %d, \"capacity_rps\": %.0f,\n"
              "  \"rows\": [\n",
              config.pipeline_threads, config.queue_capacity,
              config.service_delay_us, config.deadline_ms,
              config.wire_latency_us, capacity_rps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_row_json(rows[i], i + 1 == rows.size());
  }
  std::printf("  ],\n  \"wire_vs_in_process_1x\": %.3f, \"pass\": %s\n}\n",
              ratio, pass ? "true" : "false");
  return pass ? 0 : 1;
}
