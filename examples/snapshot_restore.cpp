// Snapshot / restore walkthrough (PR 10): the platform's runtime state
// — synthesis runtime model, interpreter LTS states, engine memory,
// context store, broker variables — exports as a model::Value tree
// through the text codec, and a restored platform RESUMES sequenced
// work instead of restarting it.
//
// The demo opens a CVM session on platform A, snapshots it, then closes
// the session twice: once on a COLD platform B (which re-runs the whole
// session lifecycle — establishment fires again before the teardown)
// and once on a RESTORED platform C (which remembers the live session
// and runs the teardown alone). The resource-command traces make the
// difference visible; the same export powers the cluster's failover
// resume (DESIGN.md §6i).
#include <cstdio>

#include "domains/comm/cvm.hpp"

using namespace mdsm;

namespace {

constexpr const char* kOpen = R"(
model conference conforms cml
object Connection standup {
  state = active
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant bruno { address = "bruno@lab" }
}
)";

constexpr const char* kClose = R"(
model conference conforms cml
object Connection standup {
  state = closed
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant bruno { address = "bruno@lab" }
}
)";

void show_trace(const char* label, const core::Platform& platform,
                std::size_t from) {
  const auto& entries = platform.trace().entries();
  std::printf("  %s (%zu commands):\n", label, entries.size() - from);
  for (std::size_t i = from; i < entries.size(); ++i) {
    std::printf("    -> %s\n", entries[i].c_str());
  }
}

}  // namespace

int main() {
  // Platform A: open a session, then checkpoint the runtime.
  auto source = comm::make_cvm();
  if (!source.ok()) {
    std::printf("CVM assembly failed: %s\n",
                source.status().to_string().c_str());
    return 1;
  }
  core::Platform& a = *(*source)->platform;
  std::printf("[1] platform A establishes a session\n");
  if (auto opened = a.submit_model_text(kOpen); !opened.ok()) {
    std::printf("open failed: %s\n", opened.status().to_string().c_str());
    return 1;
  }
  show_trace("A", a, 0);

  Result<std::string> snapshot = a.snapshot();
  if (!snapshot.ok()) {
    std::printf("snapshot failed: %s\n",
                snapshot.status().to_string().c_str());
    return 1;
  }
  std::printf("\n[2] snapshot taken: %zu bytes of text-codec state\n",
              snapshot.value().size());

  // Platform B, cold: the close submission diffs against an EMPTY
  // runtime model, so establishment re-fires before the teardown —
  // that restart is exactly what a checkpoint avoids.
  auto cold = comm::make_cvm();
  if (!cold.ok()) return 1;
  core::Platform& b = *(*cold)->platform;
  std::printf("\n[3] platform B (cold, no restore) closes the session\n");
  (void)b.submit_model_text(kClose);
  show_trace("B restarts the lifecycle", b, 0);

  // Platform C, restored: the interpreter already holds the session
  // live, so the same submission is a pure teardown.
  auto restored = comm::make_cvm();
  if (!restored.ok()) return 1;
  core::Platform& c = *(*restored)->platform;
  if (Status adopted = c.restore(snapshot.value()); !adopted.ok()) {
    std::printf("restore failed: %s\n", adopted.to_string().c_str());
    return 1;
  }

  // Determinism check before touching C: serialization sorts every
  // scalar store, so re-snapshotting a restored platform reproduces
  // the checkpoint byte-for-byte.
  Result<std::string> again = c.snapshot();
  std::printf("\n[4] re-snapshot of the restored platform is byte-equal: %s\n",
              again.ok() && again.value() == snapshot.value() ? "yes" : "NO");

  std::printf("\n[5] platform C (restored from the snapshot) closes it\n");
  (void)c.submit_model_text(kClose);
  show_trace("C resumes: teardown only", c, 0);
  return 0;
}
