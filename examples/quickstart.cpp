// Quickstart: build a domain-specific middleware platform from a
// middleware model, then run a model-based application on it.
//
// The domain here is a deliberately tiny "greeting service". The steps
// mirror Fig. 2 of the paper:
//   1. define the application DSML (metamodel),
//   2. write the middleware model (structure + operational semantics),
//   3. assemble the platform and install a resource adapter,
//   4. submit an application model; the platform orchestrates resources.
#include <cstdio>

#include "core/platform.hpp"

using namespace mdsm;

namespace {

/// 1. The application-level DSML: a Greeting with a recipient and tone.
model::MetamodelPtr greeting_dsml() {
  model::Metamodel mm("greetlang");
  auto& greeting = mm.add_class("Greeting");
  greeting.add_attribute({.name = "to",
                          .type = model::AttrType::kString,
                          .required = true});
  greeting.add_attribute({.name = "tone",
                          .type = model::AttrType::kEnum,
                          .enum_literals = {"casual", "formal"},
                          .default_value = model::Value("casual")});
  return model::finalize_metamodel(std::move(mm));
}

/// 2. The middleware model: one broker action per tone (selected by a
/// context guard), a pass-through controller, and an LTS that turns
/// Greeting objects into "greet" commands.
constexpr std::string_view kMiddlewareModel = R"mw(
model greeting_platform conforms mdsm

object MiddlewarePlatform mw {
  name = "greeting-platform"
  child ui UiLayerSpec ui1 { dsml = "greetlang" }

  child broker BrokerLayerSpec b1 {
    child actions ActionSpec casual {
      name = "greet-casual"
      child steps StepSpec s1 {
        op = invoke a = "console" b = "say"
        child args ArgSpec a1 { key = "text" value = "hey" }
        child args ArgSpec a2 { key = "to" value = "$to" }
      }
    }
    child actions ActionSpec formal {
      name = "greet-formal"
      guard = "tone == \"formal\""
      priority = 5
      child steps StepSpec s2 {
        op = invoke a = "console" b = "say"
        child args ArgSpec a3 { key = "text" value = "good day" }
        child args ArgSpec a4 { key = "to" value = "$to" }
      }
    }
    child handlers HandlerSpec h1 { signal = "greet" actions -> formal, casual }
    child resources ResourceSpec r1 { name = "console" }
  }

  child controller ControllerLayerSpec c1 {
    child actions ActionSpec fwd {
      name = "fwd-greet"
      child steps StepSpec s3 {
        op = broker-call a = "greet"
        child args ArgSpec a5 { key = "to" value = "$to" }
      }
    }
    child bindings BindingSpec bind1 { command = "greet" actions -> fwd }
  }

  child synthesis SynthesisLayerSpec se1 {
    child transitions TransitionSpec t1 {
      from = "initial" to = "greeted" kind = add-object class = "Greeting"
      child commands CommandTemplateSpec ct1 {
        name = "greet"
        child args ArgSpec sa1 { key = "to" value = "%attr:to" }
      }
    }
    # Re-greet only when the tone is switched to formal (the creation-time
    # default "casual" does not re-fire).
    child transitions TransitionSpec t2 {
      from = "greeted" to = "greeted" kind = set-attribute
      class = "Greeting" feature = "tone" value = "formal" vtype = string
      child commands CommandTemplateSpec ct2 {
        name = "greet"
        child args ArgSpec sa2 { key = "to" value = "%attr:to" }
      }
    }
  }
}
)mw";

/// 3. The underlying resource: prints greetings.
class ConsoleAdapter final : public broker::ResourceAdapter {
 public:
  ConsoleAdapter() : ResourceAdapter("console") {}
  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    if (command != "say") return NotFound("console only knows 'say'");
    std::printf("  console: %s, %s!\n",
                args.at("text").as_string().c_str(),
                args.at("to").as_string().c_str());
    return model::Value(true);
  }
};

}  // namespace

int main() {
  // Assemble the platform from the middleware model.
  core::PlatformConfig config;
  config.dsml = greeting_dsml();
  auto platform = core::Platform::assemble_from_text(kMiddlewareModel, config);
  if (!platform.ok()) {
    std::printf("assembly failed: %s\n", platform.status().to_string().c_str());
    return 1;
  }
  (void)(*platform)->add_resource_adapter(std::make_unique<ConsoleAdapter>());
  if (Status started = (*platform)->start(); !started.ok()) {
    std::printf("start failed: %s\n", started.to_string().c_str());
    return 1;
  }
  std::printf("platform '%s' is up\n", (*platform)->name().c_str());

  // 4. Run an application model.
  std::printf("submitting application model (two greetings)...\n");
  auto script = (*platform)->submit_model_text(R"(
model hello conforms greetlang
object Greeting g1 { to = "world" }
object Greeting g2 { to = "professor" }
)");
  if (!script.ok()) {
    std::printf("submission failed: %s\n", script.status().to_string().c_str());
    return 1;
  }

  // Context changes middleware behaviour without touching the model.
  std::printf("switching tone context to formal and re-greeting...\n");
  (*platform)->context().set("tone", model::Value("formal"));
  (void)(*platform)->submit_model_text(R"(
model hello conforms greetlang
object Greeting g1 { to = "world" tone = formal }
object Greeting g2 { to = "professor" tone = formal }
)");

  std::printf("\nresource command trace:\n");
  for (const std::string& entry : (*platform)->trace().entries()) {
    std::printf("  %s\n", entry.c_str());
  }
  std::printf("\ncurrent runtime model (round-trip):\n%s",
              (*platform)->runtime_model_text().c_str());

  // Observability: the last request's span tree and the platform-wide
  // metrics recorded by every layer.
  std::printf("\nlast request trace:\n%s",
              (*platform)->last_trace()->to_text().c_str());
  std::printf("\nplatform metrics:\n%s",
              (*platform)->metrics().to_text().c_str());
  return 0;
}
