// CSVM example: a participatory-sensing campaign — query models authored
// on devices, periodic sampling over virtual time, provider-side
// aggregation, and an on-the-fly model change on a long-running query.
#include <cstdio>

#include "domains/crowd/fleet.hpp"

using namespace mdsm;

int main() {
  auto fleet = crowd::make_fleet();
  constexpr int kDevices = 25;
  for (int i = 0; i < kDevices; ++i) {
    fleet->add_device("phone-" + std::to_string(i),
                      static_cast<std::uint32_t>(i * 7 + 1));
  }
  std::printf("crowd fleet up: provider + %d devices\n\n", kDevices);

  std::printf("[1] every device starts the city-temperature query "
              "(period 30 s)\n");
  for (auto& device : fleet->devices) {
    auto script = device->submit_model_text(R"(
model campaign conforms csml
object SensingQuery city-temp {
  sensor = temperature
  aggregate = avg
  period_s = 30
  region = "downtown"
}
)");
    if (!script.ok()) {
      std::printf("device %s failed: %s\n", device->id().c_str(),
                  script.status().to_string().c_str());
      return 1;
    }
  }

  std::printf("[2] five minutes of virtual time pass...\n");
  fleet->advance(std::chrono::seconds(30), 10);
  const crowd::QueryAggregate* temp = fleet->provider->query("city-temp");
  std::printf("    reports: %llu, avg downtown temperature: %.2f\n",
              static_cast<unsigned long long>(temp->count), temp->result());

  std::printf("\n[3] on-the-fly change: sample every 10 s instead "
              "(long-running query keeps its history)\n");
  for (auto& device : fleet->devices) {
    (void)device->submit_model_text(R"(
model campaign conforms csml
object SensingQuery city-temp {
  sensor = temperature
  aggregate = avg
  period_s = 10
  region = "downtown"
}
)");
  }
  fleet->advance(std::chrono::seconds(10), 12);  // two more minutes
  std::printf("    reports now: %llu (rate tripled), avg: %.2f\n",
              static_cast<unsigned long long>(temp->count), temp->result());

  std::printf("\n[4] a second query joins from one device: max noise\n");
  auto& reporter = *fleet->devices.front();
  (void)reporter.submit_model_text(R"(
model campaign conforms csml
object SensingQuery city-temp {
  sensor = temperature
  aggregate = avg
  period_s = 10
  region = "downtown"
}
object SensingQuery noise-peak {
  sensor = noise
  aggregate = max
  period_s = 20
}
)");
  fleet->advance(std::chrono::seconds(20), 6);
  const crowd::QueryAggregate* noise = fleet->provider->query("noise-peak");
  std::printf("    noise-peak: %llu samples, max %.2f dB\n",
              static_cast<unsigned long long>(noise->count), noise->result());

  std::printf("\n[5] stopping the campaign\n");
  for (auto& device : fleet->devices) {
    (void)device->submit_model_text("model done conforms csml\n");
  }
  std::uint64_t before = fleet->provider->reports_received();
  fleet->advance(std::chrono::seconds(30), 5);
  std::printf("    reports after stop: +%llu (queries are gone)\n",
              static_cast<unsigned long long>(
                  fleet->provider->reports_received() - before));
  std::printf("\nnetwork: %llu messages delivered, %llu total reports\n",
              static_cast<unsigned long long>(fleet->network.stats().delivered),
              static_cast<unsigned long long>(
                  fleet->provider->reports_received()));
  return 0;
}
