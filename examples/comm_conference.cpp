// CVM example: a multimedia conference driven entirely by CML models —
// establishment, quality adaptation under bandwidth change, link-failure
// recovery by the autonomic manager, and teardown.
#include <cstdio>

#include "domains/comm/cvm.hpp"

using namespace mdsm;

namespace {

void show_trace(const core::Platform& platform, std::size_t from) {
  const auto& entries = platform.trace().entries();
  for (std::size_t i = from; i < entries.size(); ++i) {
    std::printf("    -> %s\n", entries[i].c_str());
  }
}

}  // namespace

int main() {
  auto cvm = comm::make_cvm();
  if (!cvm.ok()) {
    std::printf("CVM assembly failed: %s\n", cvm.status().to_string().c_str());
    return 1;
  }
  core::Platform& platform = *(*cvm)->platform;
  std::printf("CVM up: platform '%s' over DSML '%s'\n\n",
              platform.name().c_str(), platform.dsml()->name().c_str());

  // 1. Establish a three-party conference with audio + video.
  platform.context().set("bandwidth", model::Value(3.0));
  std::printf("[1] establishing conference (bandwidth=3.0 => high "
              "quality)\n");
  auto script = platform.submit_model_text(R"(
model conference conforms cml
object Connection standup {
  state = active
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant bruno { address = "bruno@lab" }
  child participants Participant carla { address = "carla@home" }
  child media Medium voice { kind = audio }
  child media Medium cam { kind = video }
}
)");
  if (!script.ok()) {
    std::printf("failed: %s\n", script.status().to_string().c_str());
    return 1;
  }
  show_trace(platform, 0);
  std::size_t mark = platform.trace().size();

  // 2. Bandwidth drops: retune the video via a model update.
  std::printf("\n[2] bandwidth drops; retuning video to low quality\n");
  platform.context().set("bandwidth", model::Value(0.3));
  (void)platform.submit_model_text(R"(
model conference conforms cml
object Connection standup {
  state = active
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant bruno { address = "bruno@lab" }
  child participants Participant carla { address = "carla@home" }
  child media Medium voice { kind = audio }
  child media Medium cam { kind = video quality = low }
}
)");
  show_trace(platform, mark);
  mark = platform.trace().size();

  // 3. Carla's link drops — the NCB's autonomic rule reconnects her.
  std::printf("\n[3] injecting link failure for carla\n");
  (*cvm)->service.inject_link_failure("standup", "carla");
  show_trace(platform, mark);
  std::printf("    autonomic adaptations so far: %llu\n",
              static_cast<unsigned long long>(
                  platform.broker().autonomic().adaptations()));
  for (const std::string& line :
       platform.broker().autonomic().adaptation_log()) {
    std::printf("    log: %s\n", line.c_str());
  }
  mark = platform.trace().size();

  // 4. Bruno leaves, then the conference closes.
  std::printf("\n[4] bruno leaves; conference closes\n");
  (void)platform.submit_model_text(R"(
model conference conforms cml
object Connection standup {
  state = closed
  topology = conference
  child participants Participant ana { address = "ana@hq" role = initiator }
  child participants Participant carla { address = "carla@home" }
  child media Medium voice { kind = audio }
  child media Medium cam { kind = video quality = low }
}
)");
  show_trace(platform, mark);

  std::printf("\ncontroller stats: %llu commands (%llu via predefined "
              "actions, %llu via generated intent models)\n",
              static_cast<unsigned long long>(
                  platform.controller().stats().commands_executed),
              static_cast<unsigned long long>(
                  platform.controller().stats().case1_executions),
              static_cast<unsigned long long>(
                  platform.controller().stats().case2_executions));
  std::printf("service handshakes performed: %llu\n",
              static_cast<unsigned long long>((*cvm)->service.handshakes()));
  return 0;
}
