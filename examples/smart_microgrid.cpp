// MGridVM example: a home microgrid managed through MGridML models —
// provisioning, a demand spike rebalanced autonomically, eco mode, and a
// simulated day of storage dynamics.
#include <cstdio>

#include "domains/mgrid/mgridvm.hpp"

using namespace mdsm;

int main() {
  auto vm = mgrid::make_mgridvm();
  if (!vm.ok()) {
    std::printf("MGridVM assembly failed: %s\n",
                vm.status().to_string().c_str());
    return 1;
  }
  core::Platform& platform = *(*vm)->platform;
  mgrid::MicrogridPlant& plant = (*vm)->plant;
  std::printf("MGridVM up\n\n");

  // The energy-management policies need to know which storage to prefer
  // and which load may be shed.
  platform.context().set("storage.main", model::Value("battery"));
  platform.context().set("load.sheddable", model::Value("heater"));

  std::printf("[1] provisioning the home microgrid\n");
  auto script = platform.submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = normal
  child devices Generator solar { capacity_kw = 5.0 renewable = true running = true setpoint_kw = 4.0 }
  child devices Load house { demand_kw = 2.5 critical = true }
  child devices Storage battery { capacity_kwh = 8.0 }
}
)");
  if (!script.ok()) {
    std::printf("failed: %s\n", script.status().to_string().c_str());
    return 1;
  }
  std::printf("    generation=%.1f kW demand=%.1f kW net=%+.1f kW\n",
              plant.generation_kw(), plant.demand_kw(), plant.net_power_kw());

  std::printf("\n[2] evening demand spike: heater comes on (3 kW)\n");
  (void)platform.submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = normal
  child devices Generator solar { capacity_kw = 5.0 renewable = true running = true setpoint_kw = 4.0 }
  child devices Load house { demand_kw = 2.5 critical = true }
  child devices Load heater { demand_kw = 3.0 }
  child devices Storage battery { capacity_kwh = 8.0 }
}
)");
  std::printf("    net=%+.1f kW after autonomic rebalancing (%llu "
              "adaptation(s))\n",
              plant.net_power_kw(),
              static_cast<unsigned long long>(
                  platform.broker().autonomic().adaptations()));
  for (const std::string& line :
       platform.broker().autonomic().adaptation_log()) {
    std::printf("    log: %s\n", line.c_str());
  }
  std::printf("    battery mode: %s, heater connected: %s\n",
              plant.storage("battery")->mode.c_str(),
              plant.load("heater") != nullptr &&
                      plant.load("heater")->connected
                  ? "yes"
                  : "no (shed)");

  std::printf("\n[3] simulating four hours of storage dynamics\n");
  for (int hour = 1; hour <= 4; ++hour) {
    plant.step(1.0);
    std::printf("    t+%dh: battery level %.1f kWh (mode %s), net %+.1f "
                "kW\n",
                hour, plant.storage("battery")->level_kwh,
                plant.storage("battery")->mode.c_str(),
                plant.net_power_kw());
  }

  std::printf("\n[4] switching the grid to eco mode (renewables-first "
              "dispatch)\n");
  (void)platform.submit_model_text(R"(
model home conforms mgridml
object Microgrid grid {
  mode = eco
  child devices Generator solar { capacity_kw = 5.0 renewable = true running = true setpoint_kw = 4.0 }
  child devices Load house { demand_kw = 2.5 critical = true }
  child devices Load heater { demand_kw = 3.0 }
  child devices Storage battery { capacity_kwh = 8.0 }
}
)");
  std::printf("    grid.mode context: %s\n",
              platform.context().get("grid.mode").to_text().c_str());

  std::printf("\nfull command trace (%zu commands):\n",
              platform.trace().size());
  for (const std::string& entry : platform.trace().entries()) {
    std::printf("  %s\n", entry.c_str());
  }
  return 0;
}
