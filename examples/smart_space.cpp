// 2SVM example: a smart living room, split deployment — the hub runs the
// top three layers (UI, synthesis, controller), each smart object runs
// the bottom two (controller with installed scripts + broker), and the
// two halves talk over the simulated network.
#include <cstdio>

#include "domains/smartspace/ssvm.hpp"

using namespace mdsm;

namespace {

void show(const smartspace::SmartSpace& space, const char* label) {
  std::printf("  %s\n", label);
  for (const auto& [id, node] : space.nodes) {
    std::printf("    %-8s (%s): power=%s level=%lld  [scripts "
                "installed: %zu]\n",
                id.c_str(), node->device().kind.c_str(),
                node->device().power ? "on" : "off",
                static_cast<long long>(node->device().level),
                node->installed_scripts());
  }
}

}  // namespace

int main() {
  auto space = smartspace::make_smart_space();
  space->add_object("lamp", "light");
  space->add_object("thermo", "thermostat");
  space->add_object("speaker", "speaker");
  std::printf("smart space up: hub + %zu object nodes\n\n",
              space->nodes.size());

  std::printf("[1] submitting the evening model (state + two apps)\n");
  auto script = space->hub->submit_model_text(R"(
model evening conforms ssml
object SmartSpace livingroom {
  name = "living room"
  child objects SmartObject lamp { kind = light power = true level = 60 }
  child objects SmartObject thermo { kind = thermostat level = 21 }
  child objects SmartObject speaker { kind = speaker }
  child apps UbiquitousApp welcome {
    trigger = "user.entered"
    command = set-level
    level = 100
    targets -> lamp
  }
  child apps UbiquitousApp goodnight {
    trigger = "user.sleeping"
    command = power-off
    targets -> lamp, speaker
  }
}
)");
  if (!script.ok()) {
    std::printf("failed: %s\n", script.status().to_string().c_str());
    return 1;
  }
  space->pump();  // deliver hub -> object messages
  show(*space, "state after model execution:");

  std::printf("\n[2] async event: a user enters the room (lamp node)\n");
  space->nodes.at("lamp")->raise_event("user.entered");
  show(*space, "state after installed script ran:");

  std::printf("\n[3] async event: user falls asleep\n");
  space->nodes.at("lamp")->raise_event("user.sleeping");
  space->nodes.at("speaker")->raise_event("user.sleeping");
  show(*space, "state after goodnight script:");

  std::printf("\n[4] model update: thermostat to night setback (18)\n");
  (void)space->hub->submit_model_text(R"(
model evening conforms ssml
object SmartSpace livingroom {
  name = "living room"
  child objects SmartObject lamp { kind = light power = false level = 60 }
  child objects SmartObject thermo { kind = thermostat level = 18 }
  child objects SmartObject speaker { kind = speaker }
  child apps UbiquitousApp welcome {
    trigger = "user.entered"
    command = set-level
    level = 100
    targets -> lamp
  }
  child apps UbiquitousApp goodnight {
    trigger = "user.sleeping"
    command = power-off
    targets -> lamp, speaker
  }
}
)");
  space->pump();
  show(*space, "final state:");
  std::printf("\nnetwork: %llu messages delivered\n",
              static_cast<unsigned long long>(
                  space->network.stats().delivered));
  return 0;
}
