// Sharded cluster deployment: the CVM platform scaled out behind a
// consistent-hash front-end (PR 8).
//
// Three full platforms (ShardNodes), each with its own ingress
// endpoint, sit behind one ClusterFrontEnd. The client speaks the same
// PR-7 wire protocol to ONE endpoint; the {session} route capture is
// the shard key:
//
//   client ──submit/cml/<session>──► ClusterFrontEnd ──► shard-<ring(session)>
//            ◄──mdsm.reply────────── (forwarded_for = "<client>#<id>")
//
// The walkthrough shows: sessions sticking to their ring owner, a
// query fanning out and merging every shard, a runtime-model change
// shipped as a model::diff delta (73 bytes instead of ~19 KB), the
// fleet resizing live (PR 9: a fourth shard joins — warmed by a
// full-model sync before it serves — then a shard leaves and drains),
// and a shard dying mid-conversation — the breaker trips, traffic
// fails over to the ring replica, and every submission still resolves
// exactly once.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_front_end.hpp"
#include "cluster/shard_node.hpp"
#include "core/middleware_metamodel.hpp"
#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "ingress/ingress_client.hpp"
#include "model/text_format.hpp"
#include "net/network.hpp"

using namespace mdsm;

namespace {

/// Stand-in for the conferencing services each shard drives.
class QuietCommService final : public broker::ResourceAdapter {
 public:
  QuietCommService() : ResourceAdapter("comm") {}
  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)command;
    (void)args;
    return model::Value(true);
  }
};

std::string connection_text(const std::string& id) {
  return "model app_" + id + " conforms cml\nobject Connection " + id +
         " { state = pending }\n";
}

}  // namespace

int main() {
  // 1. One authoritative middleware model, parsed once: every shard is
  //    assembled from it, and it seeds the front-end's replication
  //    baseline.
  auto middleware = model::parse_model(comm::cvm_middleware_model_text(),
                                       core::middleware_metamodel());
  if (!middleware.ok()) {
    std::printf("parse failed: %s\n", middleware.status().to_string().c_str());
    return 1;
  }

  SimClock clock;
  net::NetworkConfig net_config;
  net_config.base_latency = std::chrono::microseconds(200);
  net::Network network(clock, net_config);

  // 2. Three shards, each a full platform with its own ingress.
  std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
  std::vector<std::string> endpoints;
  auto launch_node = [&](const std::string& endpoint) -> bool {
    cluster::ShardNodeOptions options;
    options.endpoint = endpoint;
    options.platform_config.dsml = comm::cml_metamodel();
    options.platform_config.pipeline_threads = 1;
    options.manual_reply_loop = true;  // this example pumps explicitly
    options.provision = [](core::Platform& platform) {
      return platform.add_resource_adapter(
          std::make_unique<QuietCommService>());
    };
    auto node = cluster::ShardNode::launch(middleware.value(), network,
                                           std::move(options));
    if (!node.ok()) {
      std::printf("launch failed: %s\n", node.status().to_string().c_str());
      return false;
    }
    nodes.push_back(std::move(node.value()));
    return true;
  };
  for (int i = 0; i < 3; ++i) {
    const std::string endpoint = "shard-" + std::to_string(i);
    if (!launch_node(endpoint)) return 1;
    endpoints.push_back(endpoint);
  }

  auto frontend = cluster::ClusterFrontEnd::attach(
      network, middleware.value(), endpoints);
  if (!frontend.ok()) return 1;
  auto client = ingress::IngressClient::attach(
      network, frontend.value()->endpoint_name());
  if (!client.ok()) return 1;

  // Deliver requests, pump each shard's reply loop, run the front-end's
  // forward-expiry housekeeping — until `done` or a wall timeout.
  auto drive = [&](const std::function<bool()>& done,
                   Duration advance = Duration{0}) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      network.run_until_idle();
      for (auto& node : nodes) node->pump();
      network.run_until_idle();
      frontend.value()->maintain();
      client.value()->expire_overdue();
      network.run_until_idle();
      if (done()) return true;
      if (advance.count() > 0) clock.advance(advance);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  };

  // 3. Nine sessions through one endpoint; the ring spreads them.
  std::printf("-- 9 sessions through '%s' --\n",
              frontend.value()->endpoint_name().c_str());
  int resolved = 0;
  for (int i = 0; i < 9; ++i) {
    const std::string session = "session-" + std::to_string(i);
    std::printf("  %-10s -> shard %zu\n", session.c_str(),
                frontend.value()->ring().owner(session));
    (void)client.value()->submit(
        "cml", session, connection_text("c" + std::to_string(i)),
        [&](const ingress::RemoteOutcome&) { ++resolved; });
  }
  drive([&] { return resolved == 9; });
  std::printf("  all %d resolved\n", resolved);

  // 4. Query fan-out: one question, every shard's answer, merged.
  std::optional<ingress::RemoteOutcome> metrics;
  (void)client.value()->query("metrics",
                              [&](const ingress::RemoteOutcome& result) {
                                metrics = result;
                              });
  drive([&] { return metrics.has_value(); });
  std::printf("\n-- query fan-out: metrics from every shard --\n%.120s...\n",
              metrics.has_value() ? metrics->payload.c_str() : "(lost)");

  // 5. Replication: tune a knob on the authoritative model; the
  //    front-end ships the diff, never the full text.
  model::Model next = middleware.value().clone();
  (void)next.set_attribute("cvm", "name", model::Value(std::string("cvm-v2")));
  (void)frontend.value()->update_model(next);
  drive([&] { return frontend.value()->stats().replication_acks >= 3; });
  const cluster::ClusterFrontEnd::Stats repl = frontend.value()->stats();
  std::printf("\n-- replication: %llu delta bytes (full model: %llu) --\n",
              static_cast<unsigned long long>(repl.delta_bytes),
              static_cast<unsigned long long>(repl.full_bytes));

  // 6. Elasticity (PR 9): a fourth shard joins live. join() warms it
  //    with a full-model sync first and only then splices the ring —
  //    the moved keyspace is ~1/4, everything else stays put.
  std::printf("\n-- joining shard-3 (warm, then splice) --\n");
  if (!launch_node("shard-3")) return 1;
  if (auto joined = frontend.value()->join("shard-3"); !joined.ok()) {
    std::printf("join refused: %s\n", joined.status().to_string().c_str());
    return 1;
  }
  drive([&] { return frontend.value()->stats().joins_completed == 1; });
  std::printf("  active shards: %zu  epoch: %llu  moved keyspace: %.2f\n",
              frontend.value()->active_shard_count(),
              static_cast<unsigned long long>(frontend.value()->epoch()),
              frontend.value()->last_rebalance_fraction());
  int rebalanced = 0;
  for (int i = 0; i < 9; ++i) {
    const std::string session = "session-" + std::to_string(i);
    std::printf("  %-10s -> shard %zu\n", session.c_str(),
                frontend.value()->ring().owner(session));
    (void)client.value()->submit(
        "cml", session, connection_text("j" + std::to_string(i)),
        [&](const ingress::RemoteOutcome&) { ++rebalanced; });
  }
  drive([&] { return rebalanced == 9; });
  std::printf("  all %d resolved on the grown ring\n", rebalanced);

  // 7. And shard 1 leaves: unspliced from the ring at once (new work
  //    routes to survivors), drained of in-flight forwards, retired.
  std::printf("\n-- shard 1 leaving (drain, then retire) --\n");
  if (Status left = frontend.value()->leave(1); !left.ok()) {
    std::printf("leave refused: %s\n", left.to_string().c_str());
    return 1;
  }
  drive([&] { return frontend.value()->stats().leaves_completed == 1; });
  std::printf("  active shards: %zu  epoch: %llu  retired: %s\n",
              frontend.value()->active_shard_count(),
              static_cast<unsigned long long>(frontend.value()->epoch()),
              frontend.value()->shard_state(1) ==
                      cluster::ClusterFrontEnd::ShardState::kRetired
                  ? "yes"
                  : "no");

  // 8. Kill a shard mid-conversation. Its sessions fail over to their
  //    ring replica; the callback ledger stays exactly-once.
  std::printf("\n-- killing shard 0 --\n");
  nodes[0]->kill();
  std::map<std::string, int> tally;
  int settled = 0;
  for (int i = 0; i < 9; ++i) {
    (void)client.value()->submit(
        "cml", "session-" + std::to_string(i),
        connection_text("k" + std::to_string(i)),
        [&](const ingress::RemoteOutcome& result) {
          ++settled;
          ++tally[result.status.ok() ? "ok" : result.refusal];
        });
  }
  // Virtual-time advances let the front-end's downstream reply timer
  // expire so lost forwards fail over.
  drive([&] { return settled == 9; }, std::chrono::milliseconds(20));
  for (const auto& [slug, count] : tally) {
    std::printf("  %-10s %d\n", slug.c_str(), count);
  }
  const cluster::ClusterFrontEnd::Stats stats = frontend.value()->stats();
  std::printf("front-end: forwarded=%llu failovers=%llu rerouted=%llu "
              "breaker_trips=%llu\n",
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.rerouted),
              static_cast<unsigned long long>(stats.breaker_trips));

  // 9. Orderly teardown: client, front-end, shards, network.
  client.value().reset();
  frontend.value().reset();
  nodes.clear();
  return 0;
}
