// Split deployment: the CVM communication platform behind a networked
// ingress front-end (PR 7).
//
// Everything before this PR ran the platform as a library — callers
// linked it and called submit_async() in-process. Here the platform
// sits behind an IngressServer on the simulated network, and a remote
// IngressClient submits application models over the wire:
//
//   client ──submit/cml/<session>──► IngressServer
//            ◄──mdsm.reply────────── router → middleware chain
//                                      → Platform::submit_async
//
// The second half deliberately overloads the platform (bounded queue of
// 2, one worker, a burst of 20) to show the PR-5 backpressure contract
// crossing the network: door refusals come back as *typed* refusal
// replies ("overload"), not silence, and every submission resolves
// exactly once.
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "core/platform.hpp"
#include "domains/comm/cml.hpp"
#include "domains/comm/cvm.hpp"
#include "ingress/ingress_client.hpp"
#include "ingress/ingress_server.hpp"
#include "net/network.hpp"

using namespace mdsm;

namespace {

/// Stand-in for the conferencing services the CVM drives.
class ConsoleCommService final : public broker::ResourceAdapter {
 public:
  ConsoleCommService() : ResourceAdapter("comm") {}
  Result<model::Value> execute(const std::string& command,
                               const broker::Args& args) override {
    (void)args;
    std::printf("    [comm resource] %s\n", command.c_str());
    return model::Value(true);
  }
};

/// Deliver requests, pump the server's reply loop, deliver replies —
/// until `done` or a wall-clock timeout (the pipeline runs in real
/// time even though the network runs on virtual time).
bool drive(net::Network& network, ingress::IngressServer& server,
           const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    network.run_until_idle();
    server.pump();
    network.run_until_idle();
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

}  // namespace

int main() {
  // 1. The platform side: the CVM with a deliberately tiny pipeline so
  //    the overload demo below actually overloads, plus an ingress
  //    endpoint name and auth token configured *in the model*.
  std::string cvm_text(comm::cvm_middleware_model_text());
  const std::string anchor = "domain = \"communication\"";
  cvm_text.insert(cvm_text.find(anchor) + anchor.size(),
                  "\n  queue_capacity = 2"
                  "\n  overflow_policy = reject"
                  "\n  ingress_endpoint = \"cvm.front\""
                  "\n  ingress_auth = \"letmein\"");

  core::PlatformConfig config;
  config.dsml = comm::cml_metamodel();
  config.pipeline_threads = 1;
  auto platform = core::Platform::assemble_from_text(cvm_text, config);
  if (!platform.ok()) {
    std::printf("assemble failed: %s\n", platform.status().to_string().c_str());
    return 1;
  }
  (void)platform.value()->add_resource_adapter(
      std::make_unique<ConsoleCommService>());
  if (Status started = platform.value()->start(); !started.ok()) {
    std::printf("start failed: %s\n", started.to_string().c_str());
    return 1;
  }

  // 2. The network between the two halves: virtual time, 200us one-way.
  SimClock clock;
  net::NetworkConfig net_config;
  net_config.base_latency = std::chrono::microseconds(200);
  net_config.jitter = std::chrono::microseconds(50);
  net::Network network(clock, net_config);

  ingress::IngressServerOptions server_options;
  server_options.manual_reply_loop = true;  // this example pumps explicitly
  auto server = ingress::IngressServer::attach(*platform.value(), network,
                                               server_options);
  if (!server.ok()) {
    std::printf("attach failed: %s\n", server.status().to_string().c_str());
    return 1;
  }
  std::printf("ingress bound at '%s' (from the middleware model)\n",
              server.value()->endpoint_name().c_str());

  ingress::IngressClientOptions client_options;
  client_options.auth = "letmein";  // matches the model's ingress_auth
  auto client = ingress::IngressClient::attach(
      network, server.value()->endpoint_name(), client_options);
  if (!client.ok()) return 1;

  // 3. One connection over the wire.
  std::printf("\n-- remote submit: one CML connection --\n");
  std::optional<ingress::RemoteOutcome> outcome;
  (void)client.value()->submit(
      "cml", "demo",
      "model app_c1 conforms cml\nobject Connection c1 { state = pending }\n",
      [&](const ingress::RemoteOutcome& result) { outcome = result; });
  drive(network, *server.value(), [&] { return outcome.has_value(); });
  if (outcome.has_value() && outcome->status.ok()) {
    std::printf("  reply: ok, script '%s', %lld commands executed\n",
                outcome->payload.c_str(),
                static_cast<long long>(outcome->commands));
  } else if (outcome.has_value()) {
    std::printf("  reply: refused (%s): %s\n", outcome->refusal.c_str(),
                outcome->status.to_string().c_str());
  }

  // 4. Round-trip engineering, remotely: query the runtime model.
  std::optional<ingress::RemoteOutcome> runtime_model;
  (void)client.value()->query("runtime-model",
                              [&](const ingress::RemoteOutcome& result) {
                                runtime_model = result;
                              });
  drive(network, *server.value(), [&] { return runtime_model.has_value(); });
  if (runtime_model.has_value() && runtime_model->status.ok()) {
    std::printf("\n-- remote query: runtime model --\n%s\n",
                runtime_model->payload.c_str());
  }

  // 5. Overload: a burst of 20 against a queue of 2 and one worker.
  //    Refusals come back as typed replies; nothing is silently lost.
  std::printf("-- remote burst: 20 submissions, queue capacity 2 --\n");
  std::map<std::string, int> tally;
  int resolved = 0;
  for (int i = 0; i < 20; ++i) {
    std::string id = "b" + std::to_string(i);
    (void)client.value()->submit(
        "cml", "burst",
        "model app_" + id + " conforms cml\nobject Connection " + id +
            " { state = pending }\n",
        [&](const ingress::RemoteOutcome& result) {
          ++resolved;
          ++tally[result.status.ok() ? "ok" : result.refusal];
        });
  }
  drive(network, *server.value(), [&] { return resolved == 20; });
  for (const auto& [slug, count] : tally) {
    std::printf("  %-10s %d\n", slug.c_str(), count);
  }

  const ingress::IngressServer::Stats stats = server.value()->stats();
  std::printf("\nserver ledger: received=%llu accepted=%llu refused=%llu "
              "replies=%llu\n",
              static_cast<unsigned long long>(stats.received),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.refused),
              static_cast<unsigned long long>(stats.replies));

  // 6. Orderly teardown: platform first (drains the pipeline), then the
  //    ingress pair, then the network.
  (void)platform.value()->stop();
  client.value().reset();
  server.value().reset();
  return 0;
}
