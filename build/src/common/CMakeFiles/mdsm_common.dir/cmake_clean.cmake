file(REMOVE_RECURSE
  "CMakeFiles/mdsm_common.dir/ids.cpp.o"
  "CMakeFiles/mdsm_common.dir/ids.cpp.o.d"
  "CMakeFiles/mdsm_common.dir/log.cpp.o"
  "CMakeFiles/mdsm_common.dir/log.cpp.o.d"
  "CMakeFiles/mdsm_common.dir/status.cpp.o"
  "CMakeFiles/mdsm_common.dir/status.cpp.o.d"
  "CMakeFiles/mdsm_common.dir/strings.cpp.o"
  "CMakeFiles/mdsm_common.dir/strings.cpp.o.d"
  "libmdsm_common.a"
  "libmdsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
