# Empty dependencies file for mdsm_common.
# This may be replaced when dependencies are built.
