file(REMOVE_RECURSE
  "libmdsm_common.a"
)
