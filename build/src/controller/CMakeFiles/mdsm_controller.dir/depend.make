# Empty dependencies file for mdsm_controller.
# This may be replaced when dependencies are built.
