file(REMOVE_RECURSE
  "CMakeFiles/mdsm_controller.dir/controller_layer.cpp.o"
  "CMakeFiles/mdsm_controller.dir/controller_layer.cpp.o.d"
  "CMakeFiles/mdsm_controller.dir/dsc.cpp.o"
  "CMakeFiles/mdsm_controller.dir/dsc.cpp.o.d"
  "CMakeFiles/mdsm_controller.dir/execution_engine.cpp.o"
  "CMakeFiles/mdsm_controller.dir/execution_engine.cpp.o.d"
  "CMakeFiles/mdsm_controller.dir/intent_model.cpp.o"
  "CMakeFiles/mdsm_controller.dir/intent_model.cpp.o.d"
  "CMakeFiles/mdsm_controller.dir/procedure.cpp.o"
  "CMakeFiles/mdsm_controller.dir/procedure.cpp.o.d"
  "CMakeFiles/mdsm_controller.dir/static_controller.cpp.o"
  "CMakeFiles/mdsm_controller.dir/static_controller.cpp.o.d"
  "libmdsm_controller.a"
  "libmdsm_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
