file(REMOVE_RECURSE
  "libmdsm_controller.a"
)
