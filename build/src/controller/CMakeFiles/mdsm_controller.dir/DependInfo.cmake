
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/controller_layer.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/controller_layer.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/controller_layer.cpp.o.d"
  "/root/repo/src/controller/dsc.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/dsc.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/dsc.cpp.o.d"
  "/root/repo/src/controller/execution_engine.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/execution_engine.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/execution_engine.cpp.o.d"
  "/root/repo/src/controller/intent_model.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/intent_model.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/intent_model.cpp.o.d"
  "/root/repo/src/controller/procedure.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/procedure.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/procedure.cpp.o.d"
  "/root/repo/src/controller/static_controller.cpp" "src/controller/CMakeFiles/mdsm_controller.dir/static_controller.cpp.o" "gcc" "src/controller/CMakeFiles/mdsm_controller.dir/static_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mdsm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mdsm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/mdsm_broker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
