
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/component_factory.cpp" "src/runtime/CMakeFiles/mdsm_runtime.dir/component_factory.cpp.o" "gcc" "src/runtime/CMakeFiles/mdsm_runtime.dir/component_factory.cpp.o.d"
  "/root/repo/src/runtime/event_bus.cpp" "src/runtime/CMakeFiles/mdsm_runtime.dir/event_bus.cpp.o" "gcc" "src/runtime/CMakeFiles/mdsm_runtime.dir/event_bus.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/mdsm_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/mdsm_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/timer_service.cpp" "src/runtime/CMakeFiles/mdsm_runtime.dir/timer_service.cpp.o" "gcc" "src/runtime/CMakeFiles/mdsm_runtime.dir/timer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
