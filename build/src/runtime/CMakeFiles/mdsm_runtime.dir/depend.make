# Empty dependencies file for mdsm_runtime.
# This may be replaced when dependencies are built.
