file(REMOVE_RECURSE
  "CMakeFiles/mdsm_runtime.dir/component_factory.cpp.o"
  "CMakeFiles/mdsm_runtime.dir/component_factory.cpp.o.d"
  "CMakeFiles/mdsm_runtime.dir/event_bus.cpp.o"
  "CMakeFiles/mdsm_runtime.dir/event_bus.cpp.o.d"
  "CMakeFiles/mdsm_runtime.dir/executor.cpp.o"
  "CMakeFiles/mdsm_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/mdsm_runtime.dir/timer_service.cpp.o"
  "CMakeFiles/mdsm_runtime.dir/timer_service.cpp.o.d"
  "libmdsm_runtime.a"
  "libmdsm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
