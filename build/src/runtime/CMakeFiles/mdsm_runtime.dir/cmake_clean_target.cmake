file(REMOVE_RECURSE
  "libmdsm_runtime.a"
)
