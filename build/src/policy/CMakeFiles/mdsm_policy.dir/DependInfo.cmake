
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/context.cpp" "src/policy/CMakeFiles/mdsm_policy.dir/context.cpp.o" "gcc" "src/policy/CMakeFiles/mdsm_policy.dir/context.cpp.o.d"
  "/root/repo/src/policy/expression.cpp" "src/policy/CMakeFiles/mdsm_policy.dir/expression.cpp.o" "gcc" "src/policy/CMakeFiles/mdsm_policy.dir/expression.cpp.o.d"
  "/root/repo/src/policy/policy_engine.cpp" "src/policy/CMakeFiles/mdsm_policy.dir/policy_engine.cpp.o" "gcc" "src/policy/CMakeFiles/mdsm_policy.dir/policy_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
