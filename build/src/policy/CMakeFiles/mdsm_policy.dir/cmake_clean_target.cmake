file(REMOVE_RECURSE
  "libmdsm_policy.a"
)
