# Empty dependencies file for mdsm_policy.
# This may be replaced when dependencies are built.
