file(REMOVE_RECURSE
  "CMakeFiles/mdsm_policy.dir/context.cpp.o"
  "CMakeFiles/mdsm_policy.dir/context.cpp.o.d"
  "CMakeFiles/mdsm_policy.dir/expression.cpp.o"
  "CMakeFiles/mdsm_policy.dir/expression.cpp.o.d"
  "CMakeFiles/mdsm_policy.dir/policy_engine.cpp.o"
  "CMakeFiles/mdsm_policy.dir/policy_engine.cpp.o.d"
  "libmdsm_policy.a"
  "libmdsm_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
