# Empty dependencies file for mdsm_model.
# This may be replaced when dependencies are built.
