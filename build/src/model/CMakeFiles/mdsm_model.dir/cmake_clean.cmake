file(REMOVE_RECURSE
  "CMakeFiles/mdsm_model.dir/diff.cpp.o"
  "CMakeFiles/mdsm_model.dir/diff.cpp.o.d"
  "CMakeFiles/mdsm_model.dir/metamodel.cpp.o"
  "CMakeFiles/mdsm_model.dir/metamodel.cpp.o.d"
  "CMakeFiles/mdsm_model.dir/model.cpp.o"
  "CMakeFiles/mdsm_model.dir/model.cpp.o.d"
  "CMakeFiles/mdsm_model.dir/text_format.cpp.o"
  "CMakeFiles/mdsm_model.dir/text_format.cpp.o.d"
  "CMakeFiles/mdsm_model.dir/value.cpp.o"
  "CMakeFiles/mdsm_model.dir/value.cpp.o.d"
  "libmdsm_model.a"
  "libmdsm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
