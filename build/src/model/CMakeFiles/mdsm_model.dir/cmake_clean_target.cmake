file(REMOVE_RECURSE
  "libmdsm_model.a"
)
