
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/diff.cpp" "src/model/CMakeFiles/mdsm_model.dir/diff.cpp.o" "gcc" "src/model/CMakeFiles/mdsm_model.dir/diff.cpp.o.d"
  "/root/repo/src/model/metamodel.cpp" "src/model/CMakeFiles/mdsm_model.dir/metamodel.cpp.o" "gcc" "src/model/CMakeFiles/mdsm_model.dir/metamodel.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/mdsm_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/mdsm_model.dir/model.cpp.o.d"
  "/root/repo/src/model/text_format.cpp" "src/model/CMakeFiles/mdsm_model.dir/text_format.cpp.o" "gcc" "src/model/CMakeFiles/mdsm_model.dir/text_format.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/model/CMakeFiles/mdsm_model.dir/value.cpp.o" "gcc" "src/model/CMakeFiles/mdsm_model.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
