# Empty compiler generated dependencies file for mdsm_crowd.
# This may be replaced when dependencies are built.
