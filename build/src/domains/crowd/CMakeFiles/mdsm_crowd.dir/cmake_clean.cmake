file(REMOVE_RECURSE
  "CMakeFiles/mdsm_crowd.dir/csml.cpp.o"
  "CMakeFiles/mdsm_crowd.dir/csml.cpp.o.d"
  "CMakeFiles/mdsm_crowd.dir/fleet.cpp.o"
  "CMakeFiles/mdsm_crowd.dir/fleet.cpp.o.d"
  "libmdsm_crowd.a"
  "libmdsm_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
