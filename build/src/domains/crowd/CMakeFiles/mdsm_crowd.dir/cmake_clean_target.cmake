file(REMOVE_RECURSE
  "libmdsm_crowd.a"
)
