# Empty compiler generated dependencies file for mdsm_smartspace.
# This may be replaced when dependencies are built.
