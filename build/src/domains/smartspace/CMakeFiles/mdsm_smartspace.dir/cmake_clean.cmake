file(REMOVE_RECURSE
  "CMakeFiles/mdsm_smartspace.dir/smart_objects.cpp.o"
  "CMakeFiles/mdsm_smartspace.dir/smart_objects.cpp.o.d"
  "CMakeFiles/mdsm_smartspace.dir/ssml.cpp.o"
  "CMakeFiles/mdsm_smartspace.dir/ssml.cpp.o.d"
  "CMakeFiles/mdsm_smartspace.dir/ssvm.cpp.o"
  "CMakeFiles/mdsm_smartspace.dir/ssvm.cpp.o.d"
  "libmdsm_smartspace.a"
  "libmdsm_smartspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_smartspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
