file(REMOVE_RECURSE
  "libmdsm_smartspace.a"
)
