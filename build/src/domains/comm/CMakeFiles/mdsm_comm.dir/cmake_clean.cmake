file(REMOVE_RECURSE
  "CMakeFiles/mdsm_comm.dir/cml.cpp.o"
  "CMakeFiles/mdsm_comm.dir/cml.cpp.o.d"
  "CMakeFiles/mdsm_comm.dir/comm_services.cpp.o"
  "CMakeFiles/mdsm_comm.dir/comm_services.cpp.o.d"
  "CMakeFiles/mdsm_comm.dir/cvm.cpp.o"
  "CMakeFiles/mdsm_comm.dir/cvm.cpp.o.d"
  "CMakeFiles/mdsm_comm.dir/handcrafted_broker.cpp.o"
  "CMakeFiles/mdsm_comm.dir/handcrafted_broker.cpp.o.d"
  "CMakeFiles/mdsm_comm.dir/scenarios.cpp.o"
  "CMakeFiles/mdsm_comm.dir/scenarios.cpp.o.d"
  "libmdsm_comm.a"
  "libmdsm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
