file(REMOVE_RECURSE
  "libmdsm_comm.a"
)
