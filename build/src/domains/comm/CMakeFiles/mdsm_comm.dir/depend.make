# Empty dependencies file for mdsm_comm.
# This may be replaced when dependencies are built.
