# CMake generated Testfile for 
# Source directory: /root/repo/src/domains/comm
# Build directory: /root/repo/build/src/domains/comm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
