file(REMOVE_RECURSE
  "libmdsm_mgrid.a"
)
