# Empty compiler generated dependencies file for mdsm_mgrid.
# This may be replaced when dependencies are built.
