file(REMOVE_RECURSE
  "CMakeFiles/mdsm_mgrid.dir/baseline.cpp.o"
  "CMakeFiles/mdsm_mgrid.dir/baseline.cpp.o.d"
  "CMakeFiles/mdsm_mgrid.dir/mgridml.cpp.o"
  "CMakeFiles/mdsm_mgrid.dir/mgridml.cpp.o.d"
  "CMakeFiles/mdsm_mgrid.dir/mgridvm.cpp.o"
  "CMakeFiles/mdsm_mgrid.dir/mgridvm.cpp.o.d"
  "CMakeFiles/mdsm_mgrid.dir/plant.cpp.o"
  "CMakeFiles/mdsm_mgrid.dir/plant.cpp.o.d"
  "libmdsm_mgrid.a"
  "libmdsm_mgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_mgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
