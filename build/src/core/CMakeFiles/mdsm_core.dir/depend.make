# Empty dependencies file for mdsm_core.
# This may be replaced when dependencies are built.
