file(REMOVE_RECURSE
  "libmdsm_core.a"
)
