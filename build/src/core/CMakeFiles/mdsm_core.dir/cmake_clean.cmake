file(REMOVE_RECURSE
  "CMakeFiles/mdsm_core.dir/assurance.cpp.o"
  "CMakeFiles/mdsm_core.dir/assurance.cpp.o.d"
  "CMakeFiles/mdsm_core.dir/bridge.cpp.o"
  "CMakeFiles/mdsm_core.dir/bridge.cpp.o.d"
  "CMakeFiles/mdsm_core.dir/middleware_metamodel.cpp.o"
  "CMakeFiles/mdsm_core.dir/middleware_metamodel.cpp.o.d"
  "CMakeFiles/mdsm_core.dir/platform.cpp.o"
  "CMakeFiles/mdsm_core.dir/platform.cpp.o.d"
  "CMakeFiles/mdsm_core.dir/spec_decode.cpp.o"
  "CMakeFiles/mdsm_core.dir/spec_decode.cpp.o.d"
  "libmdsm_core.a"
  "libmdsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
