# Empty compiler generated dependencies file for mdsm_synthesis.
# This may be replaced when dependencies are built.
