file(REMOVE_RECURSE
  "libmdsm_synthesis.a"
)
