file(REMOVE_RECURSE
  "CMakeFiles/mdsm_synthesis.dir/change_interpreter.cpp.o"
  "CMakeFiles/mdsm_synthesis.dir/change_interpreter.cpp.o.d"
  "CMakeFiles/mdsm_synthesis.dir/lts.cpp.o"
  "CMakeFiles/mdsm_synthesis.dir/lts.cpp.o.d"
  "CMakeFiles/mdsm_synthesis.dir/synthesis_engine.cpp.o"
  "CMakeFiles/mdsm_synthesis.dir/synthesis_engine.cpp.o.d"
  "CMakeFiles/mdsm_synthesis.dir/weaver.cpp.o"
  "CMakeFiles/mdsm_synthesis.dir/weaver.cpp.o.d"
  "libmdsm_synthesis.a"
  "libmdsm_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
