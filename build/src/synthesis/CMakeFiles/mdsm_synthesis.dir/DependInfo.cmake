
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synthesis/change_interpreter.cpp" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/change_interpreter.cpp.o" "gcc" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/change_interpreter.cpp.o.d"
  "/root/repo/src/synthesis/lts.cpp" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/lts.cpp.o" "gcc" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/lts.cpp.o.d"
  "/root/repo/src/synthesis/synthesis_engine.cpp" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/synthesis_engine.cpp.o" "gcc" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/synthesis_engine.cpp.o.d"
  "/root/repo/src/synthesis/weaver.cpp" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/weaver.cpp.o" "gcc" "src/synthesis/CMakeFiles/mdsm_synthesis.dir/weaver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mdsm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mdsm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/mdsm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/mdsm_broker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
