# Empty dependencies file for mdsm_net.
# This may be replaced when dependencies are built.
