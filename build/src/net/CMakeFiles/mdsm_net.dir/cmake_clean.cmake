file(REMOVE_RECURSE
  "CMakeFiles/mdsm_net.dir/network.cpp.o"
  "CMakeFiles/mdsm_net.dir/network.cpp.o.d"
  "libmdsm_net.a"
  "libmdsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
