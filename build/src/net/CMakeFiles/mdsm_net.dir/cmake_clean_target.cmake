file(REMOVE_RECURSE
  "libmdsm_net.a"
)
