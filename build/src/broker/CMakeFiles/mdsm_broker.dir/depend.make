# Empty dependencies file for mdsm_broker.
# This may be replaced when dependencies are built.
