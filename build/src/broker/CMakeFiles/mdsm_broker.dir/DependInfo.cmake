
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/action.cpp" "src/broker/CMakeFiles/mdsm_broker.dir/action.cpp.o" "gcc" "src/broker/CMakeFiles/mdsm_broker.dir/action.cpp.o.d"
  "/root/repo/src/broker/autonomic_manager.cpp" "src/broker/CMakeFiles/mdsm_broker.dir/autonomic_manager.cpp.o" "gcc" "src/broker/CMakeFiles/mdsm_broker.dir/autonomic_manager.cpp.o.d"
  "/root/repo/src/broker/broker_layer.cpp" "src/broker/CMakeFiles/mdsm_broker.dir/broker_layer.cpp.o" "gcc" "src/broker/CMakeFiles/mdsm_broker.dir/broker_layer.cpp.o.d"
  "/root/repo/src/broker/broker_types.cpp" "src/broker/CMakeFiles/mdsm_broker.dir/broker_types.cpp.o" "gcc" "src/broker/CMakeFiles/mdsm_broker.dir/broker_types.cpp.o.d"
  "/root/repo/src/broker/resource_manager.cpp" "src/broker/CMakeFiles/mdsm_broker.dir/resource_manager.cpp.o" "gcc" "src/broker/CMakeFiles/mdsm_broker.dir/resource_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mdsm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mdsm_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
