file(REMOVE_RECURSE
  "libmdsm_broker.a"
)
