file(REMOVE_RECURSE
  "CMakeFiles/mdsm_broker.dir/action.cpp.o"
  "CMakeFiles/mdsm_broker.dir/action.cpp.o.d"
  "CMakeFiles/mdsm_broker.dir/autonomic_manager.cpp.o"
  "CMakeFiles/mdsm_broker.dir/autonomic_manager.cpp.o.d"
  "CMakeFiles/mdsm_broker.dir/broker_layer.cpp.o"
  "CMakeFiles/mdsm_broker.dir/broker_layer.cpp.o.d"
  "CMakeFiles/mdsm_broker.dir/broker_types.cpp.o"
  "CMakeFiles/mdsm_broker.dir/broker_types.cpp.o.d"
  "CMakeFiles/mdsm_broker.dir/resource_manager.cpp.o"
  "CMakeFiles/mdsm_broker.dir/resource_manager.cpp.o.d"
  "libmdsm_broker.a"
  "libmdsm_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsm_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
