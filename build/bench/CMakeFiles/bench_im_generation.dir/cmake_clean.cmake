file(REMOVE_RECURSE
  "CMakeFiles/bench_im_generation.dir/bench_im_generation.cpp.o"
  "CMakeFiles/bench_im_generation.dir/bench_im_generation.cpp.o.d"
  "bench_im_generation"
  "bench_im_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_im_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
