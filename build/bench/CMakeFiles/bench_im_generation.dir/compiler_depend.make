# Empty compiler generated dependencies file for bench_im_generation.
# This may be replaced when dependencies are built.
