# Empty compiler generated dependencies file for bench_broker_overhead.
# This may be replaced when dependencies are built.
