file(REMOVE_RECURSE
  "CMakeFiles/bench_broker_overhead.dir/bench_broker_overhead.cpp.o"
  "CMakeFiles/bench_broker_overhead.dir/bench_broker_overhead.cpp.o.d"
  "bench_broker_overhead"
  "bench_broker_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broker_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
