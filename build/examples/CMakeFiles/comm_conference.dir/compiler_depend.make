# Empty compiler generated dependencies file for comm_conference.
# This may be replaced when dependencies are built.
