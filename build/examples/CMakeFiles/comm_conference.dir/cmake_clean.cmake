file(REMOVE_RECURSE
  "CMakeFiles/comm_conference.dir/comm_conference.cpp.o"
  "CMakeFiles/comm_conference.dir/comm_conference.cpp.o.d"
  "comm_conference"
  "comm_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
