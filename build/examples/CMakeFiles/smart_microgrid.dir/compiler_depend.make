# Empty compiler generated dependencies file for smart_microgrid.
# This may be replaced when dependencies are built.
