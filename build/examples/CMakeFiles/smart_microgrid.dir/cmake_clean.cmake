file(REMOVE_RECURSE
  "CMakeFiles/smart_microgrid.dir/smart_microgrid.cpp.o"
  "CMakeFiles/smart_microgrid.dir/smart_microgrid.cpp.o.d"
  "smart_microgrid"
  "smart_microgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_microgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
