# Empty compiler generated dependencies file for smart_space.
# This may be replaced when dependencies are built.
