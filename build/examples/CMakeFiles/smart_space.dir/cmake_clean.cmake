file(REMOVE_RECURSE
  "CMakeFiles/smart_space.dir/smart_space.cpp.o"
  "CMakeFiles/smart_space.dir/smart_space.cpp.o.d"
  "smart_space"
  "smart_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
