# Empty compiler generated dependencies file for crowdsensing.
# This may be replaced when dependencies are built.
