file(REMOVE_RECURSE
  "CMakeFiles/crowdsensing.dir/crowdsensing.cpp.o"
  "CMakeFiles/crowdsensing.dir/crowdsensing.cpp.o.d"
  "crowdsensing"
  "crowdsensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
