file(REMOVE_RECURSE
  "CMakeFiles/test_weaver.dir/test_weaver.cpp.o"
  "CMakeFiles/test_weaver.dir/test_weaver.cpp.o.d"
  "test_weaver"
  "test_weaver.pdb"
  "test_weaver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weaver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
