# Empty compiler generated dependencies file for test_weaver.
# This may be replaced when dependencies are built.
