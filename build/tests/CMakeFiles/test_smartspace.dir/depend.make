# Empty dependencies file for test_smartspace.
# This may be replaced when dependencies are built.
