file(REMOVE_RECURSE
  "CMakeFiles/test_smartspace.dir/test_smartspace.cpp.o"
  "CMakeFiles/test_smartspace.dir/test_smartspace.cpp.o.d"
  "test_smartspace"
  "test_smartspace.pdb"
  "test_smartspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smartspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
