file(REMOVE_RECURSE
  "CMakeFiles/test_assurance.dir/test_assurance.cpp.o"
  "CMakeFiles/test_assurance.dir/test_assurance.cpp.o.d"
  "test_assurance"
  "test_assurance.pdb"
  "test_assurance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
