# Empty compiler generated dependencies file for test_assurance.
# This may be replaced when dependencies are built.
