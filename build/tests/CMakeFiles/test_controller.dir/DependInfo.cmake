
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/test_controller.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/test_controller.dir/test_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controller/CMakeFiles/mdsm_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/mdsm_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mdsm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mdsm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mdsm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
