# Empty compiler generated dependencies file for test_mgrid.
# This may be replaced when dependencies are built.
