file(REMOVE_RECURSE
  "CMakeFiles/test_mgrid.dir/test_mgrid.cpp.o"
  "CMakeFiles/test_mgrid.dir/test_mgrid.cpp.o.d"
  "test_mgrid"
  "test_mgrid.pdb"
  "test_mgrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
