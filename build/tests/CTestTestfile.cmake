# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_broker[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_mgrid[1]_include.cmake")
include("/root/repo/build/tests/test_smartspace[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
include("/root/repo/build/tests/test_assurance[1]_include.cmake")
include("/root/repo/build/tests/test_weaver[1]_include.cmake")
include("/root/repo/build/tests/test_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
